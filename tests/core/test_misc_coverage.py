"""Remaining behaviour corners: same-region rules, batching internals,
logger options, planner percentile overrides, and network overrides."""

import pytest

from repro.core.config import ReplicaConfig
from repro.core.logger import RuntimeLogger
from repro.core.model import LocParams, NormalParam, PathParams, PerformanceModel
from repro.core.service import AReplicaService
from repro.simcloud.cloud import Cloud, CloudProfiles, build_default_cloud
from repro.simcloud.network import DEFAULT_PROFILE, NetworkProfile
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024


class TestSameRegionRule:
    def test_intra_region_replication_works_and_is_free(self):
        """src and dst buckets in the same region: valid (backup into a
        second bucket), fast, and egress-free."""
        cloud = build_default_cloud(seed=1001)
        svc = AReplicaService(cloud, ReplicaConfig(profile_samples=5,
                                                   mc_samples=300))
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("aws:us-east-1", "backup")
        svc.add_rule(src, dst)
        before = cloud.ledger.snapshot()
        blob = Blob.fresh(16 * MB)
        src.put_object("k", blob, cloud.now)
        cloud.run()
        assert dst.head("k").etag == blob.etag
        delta = before.delta(cloud.ledger.snapshot())
        assert delta.totals.get("egress", 0.0) == 0.0
        [rec] = svc.records
        assert rec.delay < 5.0


class TestBatchingInternals:
    def test_superseded_timer_does_not_flush_twice(self):
        cloud = build_default_cloud(seed=1002)
        svc = AReplicaService(cloud, ReplicaConfig(slo_seconds=30.0,
                                                   profile_samples=5,
                                                   mc_samples=300))
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("aws:us-east-2", "dst")
        rule = svc.add_rule(src, dst)

        def producer():
            for _ in range(4):
                src.put_object("hot", Blob.fresh(MB), cloud.now)
                yield cloud.sim.sleep(3.0)

        cloud.sim.run_process(producer())
        cloud.run()
        stats = rule.batcher.stats
        assert stats["delayed"] == 4
        assert stats["flushes"] + stats["superseded"] == 4
        assert stats["flushes"] <= 2

    def test_pending_count_per_key(self):
        cloud = build_default_cloud(seed=1003)
        svc = AReplicaService(cloud, ReplicaConfig(slo_seconds=60.0,
                                                   profile_samples=5,
                                                   mc_samples=300))
        src = cloud.bucket("aws:us-east-1", "src")
        rule = svc.add_rule(src, cloud.bucket("aws:us-east-2", "dst"))
        src.put_object("a", Blob.fresh(MB), cloud.now)
        src.put_object("b", Blob.fresh(MB), cloud.now)
        cloud.run(until=cloud.now + 3.0)  # notifications in, timers parked
        assert rule.batcher.pending_count("a") == 1
        assert rule.batcher.pending_count() == 2
        cloud.run()
        assert rule.batcher.pending_count() == 0


class TestLoggerOptions:
    def test_keep_timings_false_saves_memory(self):
        model = PerformanceModel(chunk_size=8 * MB)
        model.set_loc_params("l", LocParams(NormalParam(0.01, 0.001),
                                            NormalParam(0.3, 0.01),
                                            NormalParam.zero()))
        model.set_path_params(("l", "s", "d"), PathParams(
            NormalParam(0.1, 0.01), NormalParam(0.2, 0.02),
            NormalParam(0.2, 0.02)))
        logger = RuntimeLogger(model, keep_timings=False)
        for i in range(10):
            logger.record(("l", "s", "d"), 1, MB, 1.0, 1.0, time=i)
        assert logger.timings == []
        assert logger.observations(("l", "s", "d")) == 10

    def test_unknown_path_counters_zero(self):
        model = PerformanceModel(chunk_size=8 * MB)
        logger = RuntimeLogger(model)
        assert logger.corrections(("x", "y", "z")) == 0
        assert logger.observations(("x", "y", "z")) == 0


class TestPlannerPercentileOverride:
    def test_stricter_percentile_never_cheaper(self):
        cloud = build_default_cloud(seed=1004)
        svc = AReplicaService(cloud, ReplicaConfig(profile_samples=8,
                                                   mc_samples=500))
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("azure:eastus", "dst")
        svc.add_rule(src, dst)
        relaxed = svc.planner.generate(512 * MB, "aws:us-east-1",
                                       "azure:eastus", slo_remaining=30.0,
                                       percentile=0.5)
        strict = svc.planner.generate(512 * MB, "aws:us-east-1",
                                      "azure:eastus", slo_remaining=30.0,
                                      percentile=0.999)
        assert strict.n >= relaxed.n


class TestNetworkOverrides:
    def test_pair_override_applies_per_direction(self):
        profile = NetworkProfile(pair_overrides={
            ("aws", "aws:us-east-1", "aws:us-east-2"): 100.0,
        })
        cloud = Cloud(seed=0, profiles=CloudProfiles(network=profile))
        from repro.simcloud.network import BEST_CONFIGS

        use1 = cloud.region("aws:us-east-1")
        use2 = cloud.region("aws:us-east-2")
        cfg = BEST_CONFIGS["aws"]
        # Download us-east-2 -> function at us-east-1 is NOT overridden
        # (the override names the us-east-1 -> us-east-2 direction).
        down = cloud.fabric.path_mbps(use1, use2, cfg, upload=False)
        up = cloud.fabric.path_mbps(use1, use2, cfg, upload=True)
        assert up == pytest.approx(100.0 * profile.upload_factor
                                   * profile.config_scale("aws", cfg))
        assert down != pytest.approx(up)

    def test_custom_profiles_flow_through_cloud(self):
        profile = NetworkProfile(nic_cap_mbps={
            "aws": 100.0, "azure": 100.0, "gcp": 100.0})
        cloud = Cloud(seed=0, profiles=CloudProfiles(network=profile))
        assert cloud.fabric.profile.nic_cap_mbps["aws"] == 100.0
        # Default profile untouched (frozen dataclass defaults).
        assert DEFAULT_PROFILE.nic_cap_mbps["aws"] != 100.0
