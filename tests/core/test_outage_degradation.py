"""Sustained-outage degradation drills: park → probe → drain → repair.

Where ``test_outages.py`` covers the legacy retry → DLQ → redrive
ladder, these tests exercise the outage-aware path on top of it: the
health tracker opening circuits mid-trace, the engine parking no-route
tasks instead of burning retries, the half-open probe re-admitting
traffic deterministically, FIFO catch-up drains, and the anti-entropy
scanner healing divergence that slipped past everything else.
"""

import pytest

from repro.core.config import ReplicaConfig
from repro.core.health import BreakerState, NoRouteAvailable
from repro.core.repair import AntiEntropyScanner
from repro.core.retry import RetryPolicy
from repro.core.service import AReplicaService
from repro.simcloud.chaos import ChaosConfig
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

pytestmark = pytest.mark.outage

MB = 1024 * 1024
SRC = "aws:us-east-1"
DST = "azure:eastus"


def build(seed, **cfg):
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(profile_samples=5, mc_samples=300, **cfg)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket(SRC, "src")
    dst = cloud.bucket(DST, "dst")
    rule = svc.add_rule(src, dst)
    return cloud, svc, src, dst, rule


def put_spaced(cloud, src, n, gap_s=5.0, size=MB):
    """One PUT every ``gap_s`` simulated seconds, via a driver process."""
    blobs = {}

    def driver():
        for i in range(n):
            key = f"k{i}"
            blobs[key] = Blob.fresh(size)
            src.put_object(key, blobs[key], cloud.now)
            yield cloud.sim.sleep(gap_s)

    cloud.sim.run_process(driver())
    return blobs


class TestParkAndDrain:
    def test_kv_outage_parks_then_drains_to_convergence(self):
        cloud, svc, src, dst, rule = build(seed=801)
        # The source region's KV substrate goes dark for 10 minutes
        # while writes keep arriving.
        cloud.apply_chaos(ChaosConfig(kv_outages=((SRC, 0.0, 600.0),)))
        blobs = put_spaced(cloud, src, 12, gap_s=30.0)
        report = svc.run_to_convergence()
        engine = rule.engine
        # Degradation engaged: the breaker opened and later work parked
        # instead of burning platform retries into the DLQ.
        assert engine.stats["parked"] > 0
        assert engine.stats["drained"] == engine.stats["parked"]
        assert engine.backlog_size() == 0
        assert engine.backlog_drained_at is not None
        assert engine.backlog_drained_at > 600.0
        assert report.converged
        for key, blob in blobs.items():
            assert dst.head(key).etag == blob.etag
        assert svc.pending_count() == 0
        # The breaker walked the full loop and ended healthy.
        states = [s for _, t, s in svc.health.transitions
                  if t == ("kv", SRC)]
        assert states[0] == BreakerState.OPEN
        assert states[-1] == BreakerState.CLOSED
        assert BreakerState.HALF_OPEN in states

    def test_drain_preserves_park_order(self):
        cloud, svc, src, dst, rule = build(seed=802)
        engine = rule.engine
        cloud.apply_chaos(ChaosConfig(kv_outages=((SRC, 0.0, 600.0),)))
        # Record the order tasks enter the backlog and the order the
        # orchestrator sees them again.  Park order is *not* seq order
        # (a platform-retried early event re-parks behind later ones),
        # so FIFO is asserted against what was actually enqueued.
        parked_order, dispatched = [], []
        orig_park = engine._park

        def park_spy(payload):
            parked_order.append((payload["key"], payload["seq"]))
            return orig_park(payload)

        engine._park = park_spy
        faas = cloud.faas(SRC)
        orig_invoke = faas.invoke_and_forget

        def invoke_spy(name, payload):
            if name == engine._orch_name and "seq" in payload:
                dispatched.append((payload["key"], payload["seq"]))
            return orig_invoke(name, payload)

        faas.invoke_and_forget = invoke_spy
        put_spaced(cloud, src, 12, gap_s=30.0)
        report = svc.run_to_convergence()
        assert report.converged and len(parked_order) > 1
        # All 12 events arrive during the outage and every probe peeks
        # without popping, so the catch-up drain re-dispatches the full
        # backlog — its tail must be the park order, verbatim.
        assert dispatched[-len(parked_order):] == parked_order

    def test_faas_outage_fails_over_to_destination(self):
        cloud, svc, src, dst, rule = build(seed=803)
        # Only the FaaS control plane at the source dies; KV and the
        # buckets stay up, so the orchestrator can run from the far end.
        cloud.apply_chaos(ChaosConfig(faas_outages=((SRC, 0.0, 600.0),)))
        blobs = put_spaced(cloud, src, 12, gap_s=30.0)
        report = svc.run_to_convergence()
        assert rule.engine.stats["failover"] > 0
        assert report.converged
        for key, blob in blobs.items():
            assert dst.head(key).etag == blob.etag

    def test_seeded_outage_run_is_deterministic(self):
        def run():
            cloud, svc, src, dst, rule = build(seed=804)
            cloud.apply_chaos(ChaosConfig(kv_outages=((SRC, 0.0, 400.0),),
                                          faas_outages=((SRC, 100.0, 300.0),)))
            put_spaced(cloud, src, 10, gap_s=25.0)
            svc.run_to_convergence()
            return (svc.health.transitions, dict(rule.engine.stats),
                    rule.engine.backlog_drained_at)
        first, second = run(), run()
        # Breaker transitions (times included), engine counters, and the
        # drain completion instant replay bit-for-bit under one seed.
        assert first == second


class TestPlannerDegradation:
    def test_open_circuit_filters_candidates(self):
        cloud, svc, src, dst, rule = build(seed=805)
        tracker = svc.health
        for _ in range(tracker.config.failure_threshold):
            tracker.record(("faas", SRC), False)
        plan = svc.planner.fastest(4 * MB, SRC, DST)
        assert plan.loc_key == DST
        assert svc.planner.degraded_plans > 0

    def test_all_locations_dark_raises_no_route(self):
        cloud, svc, src, dst, rule = build(seed=806)
        tracker = svc.health
        for target in (("faas", SRC), ("faas", DST)):
            for _ in range(tracker.config.failure_threshold):
                tracker.record(target, False)
        with pytest.raises(NoRouteAvailable):
            svc.planner.fastest(4 * MB, SRC, DST)


class TestRetryDeadline:
    def test_deadline_escalates_before_backoff_sum(self):
        # A huge backoff with a tight total deadline: the third
        # rejection would sleep past the budget, so it escalates to the
        # platform ladder and the stat records why.
        policy = RetryPolicy(base_s=10.0, cap_s=120.0, max_attempts=50,
                             jitter=0.0, deadline_s=30.0)
        cloud, svc, src, dst, rule = build(seed=807, health_enabled=False,
                                           retry_policy=policy)
        cloud.apply_chaos(ChaosConfig(kv_outages=((SRC, 0.0, 300.0),)))
        src.put_object("k", Blob.fresh(MB), cloud.now)
        report = svc.run_to_convergence()
        assert rule.engine.stats["kv_retry_deadline"] >= 1
        assert rule.engine.stats["kv_retry_exhausted"] == 0
        assert report.converged
        assert dst.head("k").etag == src.head("k").etag

    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=-5.0)
        # The default config caps retries at half the 300s lock lease.
        assert ReplicaConfig().retry_policy.deadline_s == pytest.approx(150.0)


class TestAntiEntropyRepair:
    def _replicated(self, seed=808):
        cloud, svc, src, dst, rule = build(seed=seed)
        for i in range(6):
            src.put_object(f"k{i}", Blob.fresh(MB), cloud.now)
        cloud.run()
        assert svc.pending_count() == 0
        return cloud, svc, src, dst, rule

    def test_clean_pair_scans_clean(self):
        cloud, svc, src, dst, rule = self._replicated(seed=809)
        report = AntiEntropyScanner(svc).scan(rule, redrive=False)
        assert report.clean and report.scanned == 6
        assert report.redriven == 0

    def test_detects_and_heals_all_three_divergence_kinds(self):
        cloud, svc, src, dst, rule = self._replicated(seed=810)
        # Corrupt the destination behind the engine's back, the way a
        # lost event (or an operator) would.
        dst.delete_object("k0", cloud.now, notify=False)        # missing
        dst.put_object("k1", Blob.fresh(MB), cloud.now,
                       notify=False)                            # stale
        dst.put_object("ghost", Blob.fresh(MB), cloud.now,
                       notify=False)                            # lingering
        scanner = AntiEntropyScanner(svc)
        detected = scanner.scan(rule, redrive=False)
        assert {f.kind for f in detected.findings} == {"missing", "stale",
                                                       "lingering"}
        assert detected.redriven == 0
        healed = scanner.scan(rule, redrive=True)
        assert healed.redriven == len(healed.findings) == 3
        cloud.run()
        assert dst.head("k0").etag == src.head("k0").etag
        assert dst.head("k1").etag == src.head("k1").etag
        assert "ghost" not in dst
        assert scanner.scan(rule, redrive=False).clean

    def test_repair_does_not_break_the_audit(self):
        from repro.core.audit import ReplicationAuditor

        cloud, svc, src, dst, rule = self._replicated(seed=811)
        dst.delete_object("k2", cloud.now, notify=False)
        AntiEntropyScanner(svc).scan(rule, redrive=True)
        cloud.run()
        # Repaired deletes are stamped with the source's top sequencer,
        # so the auditor's done-drift invariant survives the repair.
        assert ReplicationAuditor(svc).audit(quiescent=True).clean
