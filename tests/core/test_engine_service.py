"""End-to-end tests for the replication engine and service facade."""

import pytest

from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024


def build(seed=7, slo=0.0, **cfg):
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(slo_seconds=slo, profile_samples=6, mc_samples=500,
                           **cfg)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("azure:eastus", "dst")
    rule = svc.add_rule(src, dst)
    return cloud, svc, src, dst, rule


@pytest.fixture(scope="module")
def env():
    """Shared environment for independent-key tests (profiling is the
    expensive part; each test uses its own object keys)."""
    return build()


class TestBasicReplication:
    def test_small_object_replicated_inline(self, env):
        cloud, svc, src, dst, rule = env
        blob = Blob.fresh(1 * MB)
        src.put_object("small", blob, cloud.now)
        cloud.run()
        assert dst.head("small").etag == blob.etag
        assert rule.engine.stats["inline"] >= 1

    def test_large_object_replicated_distributed(self, env):
        cloud, svc, src, dst, rule = env
        blob = Blob.fresh(512 * MB)
        src.put_object("large", blob, cloud.now)
        cloud.run()
        assert dst.head("large").etag == blob.etag
        assert rule.engine.stats["distributed"] >= 1

    def test_delay_recorded_and_subminute(self, env):
        cloud, svc, src, dst, rule = env
        src.put_object("timed", Blob.fresh(8 * MB), cloud.now)
        cloud.run()
        rec = [r for r in svc.records if r.key == "timed"]
        assert len(rec) == 1
        assert 0 < rec[0].delay < 60.0

    def test_delete_propagates(self, env):
        cloud, svc, src, dst, rule = env
        src.put_object("victim", Blob.fresh(MB), cloud.now)
        cloud.run()
        assert "victim" in dst
        src.delete_object("victim", cloud.now)
        cloud.run()
        assert "victim" not in dst
        kinds = [r.kind for r in svc.records if r.key == "victim"]
        assert "deleted" in kinds

    def test_overwrite_converges_to_newest(self, env):
        cloud, svc, src, dst, rule = env
        src.put_object("hot", Blob.fresh(MB), cloud.now)
        cloud.run()
        newest = src.put_object("hot", Blob.fresh(MB), cloud.now)
        cloud.run()
        assert dst.head("hot").etag == newest.etag

    def test_no_pending_after_drain(self, env):
        cloud, svc, src, dst, rule = env
        src.put_object("drained", Blob.fresh(MB), cloud.now)
        cloud.run()
        assert svc.pending_count() == 0

    def test_plan_metadata_in_records(self, env):
        cloud, svc, src, dst, rule = env
        src.put_object("meta", Blob.fresh(256 * MB), cloud.now)
        cloud.run()
        rec = [r for r in svc.records if r.key == "meta"][0]
        assert rec.plan_n >= 1
        assert rec.loc_key in ("aws:us-east-1", "azure:eastus")


class TestConcurrencyAndConsistency:
    def test_rapid_overwrites_eventually_consistent(self):
        """Many rapid PUTs to one key: the destination must converge to
        the final version with no interleaved corruption."""
        cloud, svc, src, dst, rule = build(seed=11)
        final = None
        for i in range(6):
            final = src.put_object("contested", Blob.fresh(MB), cloud.now)
        cloud.run()
        assert dst.head("contested").etag == final.etag
        assert svc.pending_count() == 0

    def test_update_during_distributed_replication_aborts_and_retries(self):
        """The Figure 14 race: a PUT mid-flight must abort the multipart
        task and converge on the new version — never a mixed object."""
        cloud, svc, src, dst, rule = build(seed=13)
        src.put_object("racy", Blob.fresh(1024 * MB), cloud.now)

        # Overwrite while the distributed task is in flight.
        def overwriter():
            yield cloud.sim.sleep(2.0)
            src.put_object("racy", Blob.fresh(1024 * MB), cloud.now)

        cloud.sim.spawn(overwriter())
        cloud.run()
        assert dst.head("racy").etag == src.head("racy").etag
        assert rule.engine.stats["aborted"] >= 1
        assert svc.pending_count() == 0

    def test_interleaved_keys_all_replicated(self):
        cloud, svc, src, dst, rule = build(seed=17)
        blobs = {}
        for i in range(20):
            key = f"k{i % 5}"
            blobs[key] = src.put_object(key, Blob.fresh(MB), cloud.now)
        cloud.run()
        for key, version in blobs.items():
            assert dst.head(key).etag == version.etag

    def test_put_then_delete_ends_deleted(self):
        cloud, svc, src, dst, rule = build(seed=19)
        src.put_object("ghost", Blob.fresh(64 * MB), cloud.now)
        src.delete_object("ghost", cloud.now)
        cloud.run()
        assert "ghost" not in dst
        assert svc.pending_count() == 0


class TestSchedulingModes:
    def test_fair_mode_replicates_correctly(self):
        cloud = build_default_cloud(seed=23)
        config = ReplicaConfig(profile_samples=6, mc_samples=500)
        svc = AReplicaService(cloud, config)
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("azure:eastus", "dst")
        rule = svc.add_rule(src, dst, scheduling="fair")
        blob = Blob.fresh(512 * MB)
        src.put_object("obj", blob, cloud.now)
        cloud.run()
        assert dst.head("obj").etag == blob.etag

    def test_pool_mode_worker_part_counts_vary(self):
        """Decentralized scheduling gives unequal per-worker part counts
        (the fast instances do more) — Fig 17b."""
        cloud, svc, src, dst, rule = build(seed=29)
        src.put_object("spread", Blob.fresh(1024 * MB), cloud.now)
        cloud.run()
        counts = [v for (task, w), v in rule.engine.worker_parts.items()]
        assert sum(counts) >= 128  # all 128 parts claimed (>= due to retries)
        assert max(counts) > min(counts)

    def test_invalid_scheduling_rejected(self):
        cloud = build_default_cloud(seed=1)
        config = ReplicaConfig(profile_samples=6)
        svc = AReplicaService(cloud, config)
        src = cloud.bucket("aws:us-east-1", "s")
        dst = cloud.bucket("aws:us-east-2", "d")
        with pytest.raises(ValueError):
            svc.add_rule(src, dst, scheduling="random")


class TestCostAccounting:
    def test_cross_cloud_replication_cost_dominated_by_egress(self):
        cloud, svc, src, dst, rule = build(seed=31)
        before = cloud.ledger.snapshot()
        src.put_object("bill", Blob.fresh(1024 * MB), cloud.now)
        cloud.run()
        delta = before.delta(cloud.ledger.snapshot())
        egress = delta.totals.get("egress", 0.0)
        # 1 GiB over AWS->Azure internet egress at $0.09/GB.
        assert egress == pytest.approx(0.09 * 1024 * MB / 1e9, rel=0.01)
        assert egress / delta.total > 0.8

    def test_small_object_cost_order_of_magnitude(self):
        """Paper Table 1: ~1e-4 $ for 1 MB cross-cloud replication."""
        cloud, svc, src, dst, rule = build(seed=37)
        before = cloud.ledger.snapshot()
        src.put_object("small", Blob.fresh(MB), cloud.now)
        cloud.run()
        total = before.delta(cloud.ledger.snapshot()).total
        assert 1e-5 < total < 1e-3
