"""Tests for the distribution-aware performance model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import LocParams, NormalParam, PathParams, PerformanceModel

MB = 1024 * 1024
LOC = "aws:us-east-1"
PATH = (LOC, "aws:us-east-1", "azure:eastus")


def make_model(chunk_size=8 * MB, **kwargs) -> PerformanceModel:
    model = PerformanceModel(chunk_size=chunk_size, **kwargs)
    model.set_loc_params(LOC, LocParams(
        invoke=NormalParam(0.02, 0.005),
        startup=NormalParam(0.35, 0.08),
        postponement=NormalParam.zero(),
    ))
    model.set_path_params(PATH, PathParams(
        client_startup=NormalParam(0.25, 0.05),
        chunk=NormalParam(0.20, 0.04),
        chunk_distributed=NormalParam(0.24, 0.06),
    ))
    return model


class TestNormalParam:
    def test_from_samples(self):
        p = NormalParam.from_samples([1.0, 2.0, 3.0])
        assert p.mean == pytest.approx(2.0)
        assert p.std == pytest.approx(1.0)

    def test_from_single_sample_zero_std(self):
        p = NormalParam.from_samples([5.0])
        assert (p.mean, p.std) == (5.0, 0.0)

    def test_from_empty_rejected(self):
        with pytest.raises(ValueError):
            NormalParam.from_samples([])

    def test_scaled_is_fully_correlated(self):
        p = NormalParam(2.0, 0.5).scaled(4)
        assert (p.mean, p.std) == (8.0, 2.0)

    def test_iid_sum_sqrt_variance(self):
        p = NormalParam(2.0, 0.5).iid_sum(4)
        assert p.mean == 8.0
        assert p.std == pytest.approx(1.0)

    def test_plus_independent(self):
        p = NormalParam(1.0, 3.0).plus(NormalParam(2.0, 4.0))
        assert p.mean == 3.0
        assert p.std == pytest.approx(5.0)

    def test_percentile_monotone(self):
        p = NormalParam(10.0, 2.0)
        assert p.percentile(0.5) == pytest.approx(10.0)
        assert p.percentile(0.99) > p.percentile(0.9) > p.percentile(0.5)

    def test_percentile_of_degenerate(self):
        assert NormalParam(3.0, 0.0).percentile(0.99) == 3.0

    def test_samples_nonnegative(self):
        rng = np.random.default_rng(0)
        xs = NormalParam(0.01, 1.0).sample(rng, 1000)
        assert (xs >= 0).all()


class TestChunkMath:
    def test_num_chunks_rounds_up(self):
        m = make_model()
        assert m.num_chunks(1) == 1
        assert m.num_chunks(8 * MB) == 1
        assert m.num_chunks(8 * MB + 1) == 2
        assert m.num_chunks(1024 * MB) == 128

    def test_chunks_per_function(self):
        m = make_model()
        assert m.chunks_per_function(1024 * MB, 32) == 4
        assert m.chunks_per_function(1024 * MB, 100) == 2  # ceil(128/100)


class TestTFunc:
    def test_inline_is_zero(self):
        m = make_model()
        assert m.t_func(1, LOC, inline=True) == NormalParam.zero()

    def test_single_is_invoke_plus_startup(self):
        m = make_model()
        t = m.t_func(1, LOC)
        assert t.mean == pytest.approx(0.37)

    def test_parallel_scales_invoke_linearly(self):
        """T_func = I·n + D + P (§5.3)."""
        m = make_model()
        t8 = m.t_func(8, LOC)
        t16 = m.t_func(16, LOC)
        assert t16.mean - t8.mean == pytest.approx(8 * 0.02)


class TestTransfer:
    def test_single_grows_with_chunks(self):
        m = make_model()
        t1 = m.t_transfer_single(PATH, 8 * MB)
        t4 = m.t_transfer_single(PATH, 32 * MB)
        assert t4.mean == pytest.approx(t1.mean + 3 * 0.20)

    def test_parallel_percentile_above_single_instance_mean(self):
        """The max over n instances exceeds any single instance's mean."""
        m = make_model()
        per_mean = 0.25 + 4 * 0.24
        p50 = m.t_transfer_parallel_percentile(PATH, 1024 * MB, 32, 0.5)
        assert p50 > per_mean

    def test_parallel_percentile_monotone_in_p(self):
        m = make_model()
        p90 = m.t_transfer_parallel_percentile(PATH, 1024 * MB, 8, 0.90)
        p99 = m.t_transfer_parallel_percentile(PATH, 1024 * MB, 8, 0.99)
        assert p99 > p90

    def test_mc_cache_reused(self):
        m = make_model()
        m.t_transfer_parallel_percentile(PATH, 1024 * MB, 8, 0.9)
        runs = m.mc_runs
        m.t_transfer_parallel_percentile(PATH, 1024 * MB, 8, 0.99)
        assert m.mc_runs == runs  # same (path, n, m) key

    def test_mc_cache_invalidated_on_scale(self):
        m = make_model()
        m.t_transfer_parallel_percentile(PATH, 1024 * MB, 8, 0.9)
        runs = m.mc_runs
        m.scale_path(PATH, 1.5)
        m.t_transfer_parallel_percentile(PATH, 1024 * MB, 8, 0.9)
        assert m.mc_runs == runs + 1

    def test_gumbel_used_for_large_n(self):
        m = make_model(gumbel_threshold=32)
        m.predict_percentile(PATH, 10240 * MB, 64, 0.99)
        assert m.mc_runs == 0  # no resampling for large n (§5.3)

    def test_gumbel_approximates_monte_carlo(self):
        """EVT percentiles should be close to brute-force resampling."""
        m = make_model(mc_samples=20000)
        n, size = 128, 10240 * MB
        gumbel_p = m._gumbel_percentile(PATH, size, n, 0.9)
        per_inst = m._per_instance(PATH, size, n)
        rng = np.random.default_rng(1)
        mc = per_inst.sample(rng, (20000, n)).max(axis=1)
        mc_p = float(np.quantile(mc, 0.9))
        assert gumbel_p == pytest.approx(mc_p, rel=0.08)

    def test_scale_path_rejects_nonpositive(self):
        m = make_model()
        with pytest.raises(ValueError):
            m.scale_path(PATH, 0.0)


class TestPredict:
    def test_more_functions_cut_transfer_time(self):
        m = make_model()
        t1 = m.predict_percentile(PATH, 1024 * MB, 1, 0.9)
        t32 = m.predict_percentile(PATH, 1024 * MB, 32, 0.9)
        assert t32 < t1 / 4

    def test_inline_beats_remote_single_for_small(self):
        m = make_model()
        remote = m.predict_percentile(PATH, 1 * MB, 1, 0.9, inline=False)
        inline = m.predict_percentile(PATH, 1 * MB, 1, 0.9, inline=True)
        assert inline < remote

    def test_predict_stats_match_sample_moments(self):
        m = make_model(mc_samples=20000)
        mean, std = m.predict_stats(PATH, 1024 * MB, 16)
        samples = m.predict_samples(PATH, 1024 * MB, 16, count=20000)
        assert mean == pytest.approx(float(samples.mean()), rel=0.05)
        assert std == pytest.approx(float(samples.std()), rel=0.2)

    def test_predict_single_closed_form(self):
        m = make_model()
        mean, std = m.predict_stats(PATH, 8 * MB, 1)
        # I + D + S + C
        assert mean == pytest.approx(0.02 + 0.35 + 0.25 + 0.20)
        assert std == pytest.approx(math.sqrt(0.005**2 + 0.08**2 + 0.05**2 + 0.04**2))

    def test_has_path(self):
        m = make_model()
        assert m.has_path(PATH)
        assert not m.has_path(("gcp:us-east1", "a", "b"))

    @given(n=st.sampled_from([2, 4, 8, 16]), p=st.floats(0.6, 0.99))
    @settings(max_examples=20, deadline=None)
    def test_percentile_increases_with_n_at_fixed_chunks(self, n, p):
        """With per-function work held constant, more instances mean a
        worse straggler tail: max of more draws."""
        m = make_model()
        size_small = n * 8 * MB          # one chunk per function
        t = m.t_transfer_parallel_percentile(PATH, size_small, n, p)
        t_double = m.t_transfer_parallel_percentile(PATH, 2 * size_small, 2 * n, p)
        assert t_double >= t - 0.05
