"""Tenant-isolation regression battery.

The multi-tenant contract: one tenant's disasters — a crash storm over
its orchestrators, an outage of its buckets, an exhausted budget — stay
*its* disasters.  Every scenario here runs two tenants side by side,
points the fault at tenant A only, and asserts tenant B's replication
is complete, on time, and untouched by A's admission controller, while
the trace oracle confirms no span or lock ever crossed the tenant
boundary.

Fault scoping uses two mechanisms the production layers expose:
``ChaosConfig.crash_scope`` restricts crash injection to functions
whose deployed name contains a substring (a tenant's rule-id prefix),
and per-bucket ``in_outage`` toggles take a single tenant's store dark
without declaring a region-wide incident.
"""

from __future__ import annotations

import pytest

from repro.core.audit import ReplicationAuditor
from repro.core.config import ReplicaConfig, TenantConfig
from repro.core.invariants import TraceChecker
from repro.core.service import AReplicaService
from repro.simcloud.chaos import ChaosConfig
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.cost import estimate_task_cost
from repro.simcloud.objectstore import Blob

pytestmark = pytest.mark.tenant

KB = 1024

#: Generous end-to-end bound for an undisturbed tenant's replication
#: delay in these small-object workloads (healthy runs finish in a few
#: seconds; a cross-tenant leak of A's storm/outage shows up as minutes
#: of retry backoff or DLQ dwell).
ISOLATION_DELAY_BOUND_S = 60.0


def build_pair(seed, policy="defer", budget_a=None, shards=2,
               tracing=True, health=True):
    """Two tenants, separate buckets, same region pair, shared plane.

    The storm scenarios pin ``health=False``: per-region circuit
    breakers are *shared infrastructure* by design (a dark region is
    dark for everyone), so a storm hot enough to trip them would
    legitimately park both tenants — the isolation property under test
    is about the per-tenant layers (admission, fair share, sharding,
    retries), which the retry/DLQ ladder exercises without the shared
    breaker in the loop.
    """
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(profile_samples=4, mc_samples=300,
                           tracing_enabled=tracing, health_enabled=health)
    svc = AReplicaService(cloud, config)
    svc.enable_multitenancy(shards=shards, max_concurrent=8)
    # Tenant shard rules skip per-rule profiling; profile the region
    # pair once up front (the same probe-bucket pattern tenant-drill
    # uses), so lazily created engine workers find a fitted path model.
    probe_src = cloud.bucket("aws:us-east-1", "profile-probe-src")
    probe_dst = cloud.bucket("azure:eastus", "profile-probe-dst")
    svc.profiler.ensure_path("aws:us-east-1", probe_src, probe_dst)
    svc.profiler.ensure_path("azure:eastus", probe_src, probe_dst)
    a_src = cloud.bucket("aws:us-east-1", "a-src")
    a_dst = cloud.bucket("azure:eastus", "a-dst")
    b_src = cloud.bucket("aws:us-east-1", "b-src")
    b_dst = cloud.bucket("azure:eastus", "b-dst")
    svc.add_tenant(TenantConfig("t-a", budget_usd=budget_a,
                                budget_window_s=300.0,
                                exhausted_policy=policy), a_src, a_dst)
    svc.add_tenant(TenantConfig("t-b"), b_src, b_dst)
    return cloud, svc, (a_src, a_dst), (b_src, b_dst)


def put_workload(cloud, bucket, n, prefix="k", size=32 * KB, start=1.0,
                 spacing=2.0):
    base = cloud.sim.now
    for i in range(n):
        cloud.sim.call_at(
            base + start + i * spacing,
            lambda i=i: bucket.put_object(f"{prefix}{i}", Blob.fresh(size),
                                          cloud.sim.now))


def tenant_delays(svc, tenant_id):
    rule_ids = {r.rule_id for r in svc.tenant_rules(tenant_id)}
    return [r.delay for r in svc.records if r.rule_id in rule_ids]


def assert_replicated(src, dst, n, prefix="k"):
    for i in range(n):
        assert dst.head(f"{prefix}{i}").etag == src.head(f"{prefix}{i}").etag


# -- fault isolation: storms and outages scoped to tenant A -------------------

class TestFaultIsolation:
    def test_crash_storm_scoped_to_tenant_a_leaves_b_on_time(self):
        """A heavy crash storm over tenant A's orchestrators (scoped by
        rule-id prefix, so ``areplica-*-t-a-s*`` deployments only) must
        not push tenant B's replication delay past the healthy bound."""
        cloud, svc, (a_src, a_dst), (b_src, b_dst) = build_pair(
            seed=9005, health=False)
        put_workload(cloud, a_src, 8, prefix="a")
        put_workload(cloud, b_src, 8, prefix="b")
        cloud.apply_chaos(ChaosConfig(crash_prob=0.35,
                                      crash_mean_delay_s=0.1,
                                      crash_scope="t-a-"))
        cloud.run()
        cloud.apply_chaos(None)
        assert svc.run_to_convergence().converged
        assert cloud.chaos_stats()["faas_crashes"] > 0, "storm never hit"

        assert_replicated(a_src, a_dst, 8, prefix="a")
        assert_replicated(b_src, b_dst, 8, prefix="b")
        b_delays = tenant_delays(svc, "t-b")
        assert len(b_delays) == 8
        assert max(b_delays) <= ISOLATION_DELAY_BOUND_S, (
            f"tenant A's storm delayed tenant B: {max(b_delays):.1f}s")
        report = ReplicationAuditor(svc).audit(quiescent=True)
        assert report.clean, report.render()

    def test_tenant_a_bucket_outage_does_not_slow_b(self):
        """Tenant A's destination bucket goes dark mid-replication (a
        per-bucket outage, not a regional one).  B — same regions, same
        shared scheduler — must converge inside the healthy bound."""
        cloud, svc, (a_src, a_dst), (b_src, b_dst) = build_pair(
            seed=9002, health=False)
        put_workload(cloud, a_src, 6, prefix="a")
        put_workload(cloud, b_src, 6, prefix="b")

        def darken():
            a_dst.in_outage = True

        def restore():
            a_dst.in_outage = False

        base = cloud.sim.now
        cloud.sim.call_at(base + 2.0, darken)
        cloud.sim.call_at(base + 14.0, restore)
        cloud.run()
        assert svc.run_to_convergence().converged

        assert_replicated(a_src, a_dst, 6, prefix="a")
        assert_replicated(b_src, b_dst, 6, prefix="b")
        b_delays = tenant_delays(svc, "t-b")
        assert max(b_delays) <= ISOLATION_DELAY_BOUND_S
        # A genuinely felt the outage (its delays straddle the window).
        assert max(tenant_delays(svc, "t-a")) > max(b_delays)

    def test_trace_oracle_finds_no_cross_tenant_leakage(self):
        """The tenant-isolation trace invariant: every span/event tagged
        with a tenant must reference only that tenant's tasks and lock
        owners.  Run the storm scenario and let the oracle audit it."""
        cloud, svc, (a_src, a_dst), (b_src, b_dst) = build_pair(
            seed=9003, health=False)
        put_workload(cloud, a_src, 5, prefix="a")
        put_workload(cloud, b_src, 5, prefix="b")
        cloud.apply_chaos(ChaosConfig(crash_prob=0.3,
                                      crash_mean_delay_s=0.1,
                                      crash_scope="t-a-"))
        cloud.run()
        cloud.apply_chaos(None)
        assert svc.run_to_convergence().converged
        report = TraceChecker(svc).check()
        isolation = [f for f in report.findings
                     if f.kind == "tenant-isolation"]
        assert not isolation, "\n".join(str(f) for f in isolation)
        assert report.checked["tenant_records"] > 0, "oracle saw no tenants"
        assert report.clean, report.render()


# -- budget isolation: A's exhaustion never touches B -------------------------

class TestBudgetIsolation:
    def _exhaust_a(self, policy):
        cloud, svc, (a_src, a_dst), (b_src, b_dst) = build_pair(
            seed=9004, policy=policy, budget_a=2.0e-05)
        # Budget below one task's estimate: admission is strict-below,
        # so exactly the first event of each window clears it and every
        # subsequent one defers/rejects until the window rolls.
        task_cost = estimate_task_cost(
            cloud.prices, a_src.region, a_dst.region, 32 * KB)
        assert task_cost > 2.0e-05, "budget not actually tight"
        put_workload(cloud, a_src, 6, prefix="a", spacing=1.0)
        put_workload(cloud, b_src, 6, prefix="b", spacing=1.0)
        cloud.run()
        return cloud, svc, (a_src, a_dst), (b_src, b_dst)

    def test_a_exhaustion_under_reject_never_rejects_b(self):
        cloud, svc, _, (b_src, b_dst) = self._exhaust_a("reject")
        assert svc.run_to_convergence().converged
        summary = svc.tenant_summary()
        assert summary["t-a"]["rejected"] > 0, "A never exhausted"
        assert summary["t-b"]["rejected"] == 0
        assert summary["t-b"]["deferred"] == 0
        assert summary["t-b"]["admitted"] == 6
        assert_replicated(b_src, b_dst, 6, prefix="b")
        # A's dst holds exactly its admitted keys: post-exhaustion tasks
        # never dispatched, and the ledger self-audit agrees.
        a_state = svc.tenants["t-a"]
        a_dst_keys = len(list(svc.tenants["t-a"].dst_bucket.keys()))
        assert a_dst_keys == summary["t-a"]["admitted"]
        assert summary["t-a"]["over_admissions"] == 0
        assert summary["t-a"]["rejected"] + summary["t-a"]["admitted"] == 6

    def test_a_exhaustion_under_defer_parks_only_a(self):
        cloud, svc, (a_src, a_dst), (b_src, b_dst) = self._exhaust_a("defer")
        # B fully converges even while A still has a deferral lane; the
        # service-level report only closes once A's windows roll and the
        # lane drains — both tenants then converged with zero rejects.
        report = svc.run_to_convergence()
        assert report.converged
        summary = svc.tenant_summary()
        assert summary["t-a"]["deferred"] > 0, "A never deferred"
        assert summary["t-b"]["deferred"] == 0
        assert summary["t-b"]["rejected"] == 0
        assert summary["t-a"]["deferred_lane"] == 0, "lane never drained"
        assert_replicated(a_src, a_dst, 6, prefix="a")
        assert_replicated(b_src, b_dst, 6, prefix="b")
        assert summary["t-a"]["over_admissions"] == 0
        # B's delays never waited on A's window rolls.
        assert max(tenant_delays(svc, "t-b")) <= ISOLATION_DELAY_BOUND_S

    def test_b_unbudgeted_admits_everything_regardless_of_a(self):
        """The admission controller consults only the event's own
        tenant: with A pinned at zero budget, B's ledger never so much
        as syncs against A's window."""
        cloud, svc, _, _ = self._exhaust_a("defer")
        svc.run_to_convergence()
        b_ledger = svc.tenants["t-b"].ledger
        assert b_ledger.budget_usd is None
        assert len(b_ledger.entries) == 6
        assert b_ledger.over_admissions() == 0
        # B admitted everything in its arrival window; A's admissions
        # straddled budget-window rolls (defer drains one per window).
        assert len({e.window for e in b_ledger.entries}) == 1
        a_ledger = svc.tenants["t-a"].ledger
        assert len({e.window for e in a_ledger.entries}) > 1
