"""Fault-tolerance tests (§6): crashed functions, auto-retry, orphaned
part recovery, dead-letter queues, and lock lease recovery."""

import numpy as np
import pytest

from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024
GB = 1024 * MB


def build(seed=7, slo=0.0, **cfg):
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(slo_seconds=slo, profile_samples=6, mc_samples=500,
                           **cfg)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("azure:eastus", "dst")
    rule = svc.add_rule(src, dst)
    return cloud, svc, src, dst, rule


class TestChaosInjection:
    def test_chaos_crashes_are_retried_by_platform(self):
        cloud = build_default_cloud(seed=101)
        faas = cloud.faas("aws:us-east-1")
        faas.chaos_crash_prob = 1.0  # first attempts always crash
        faas.chaos_mean_delay_s = 0.05
        attempts = []

        def handler(ctx, payload):
            attempts.append(ctx.now)
            yield ctx.sleep(5.0)
            return "done"

        faas.deploy("f", handler)

        def main():
            accepted, inv = faas.invoke("f", None)
            yield accepted
            try:
                return (yield inv)
            except Exception as exc:  # noqa: BLE001
                return repr(exc)

        result = cloud.sim.run_process(main())
        assert faas.chaos_crashes >= 1
        assert len(attempts) >= 2            # at least one retry happened
        # All attempts crash (prob=1) -> eventually dead-lettered.
        assert "InvocationFailed" in result
        assert len(faas.dead_letters) == 1

    def test_partial_chaos_eventually_succeeds(self):
        cloud = build_default_cloud(seed=102)
        faas = cloud.faas("aws:us-east-1")
        faas.chaos_crash_prob = 0.5
        faas.chaos_mean_delay_s = 0.01
        successes = 0

        def handler(ctx, payload):
            yield ctx.sleep(1.0)
            return "ok"

        faas.deploy("f", handler)
        for i in range(20):
            def main():
                accepted, inv = faas.invoke("f", None)
                yield accepted
                try:
                    return (yield inv)
                except Exception:  # noqa: BLE001
                    return None

            if cloud.sim.run_process(main()) == "ok":
                successes += 1
        # With 2 retries, P(all three attempts crash) is small.
        assert successes >= 15

    def test_chaos_off_by_default(self):
        cloud = build_default_cloud(seed=103)
        faas = cloud.faas("aws:us-east-1")
        assert faas.chaos_crash_prob == 0.0


class TestReplicationUnderCrashes:
    def test_distributed_replication_survives_worker_crashes(self):
        """Workers crash mid-task; platform retries plus orphaned-part
        recovery still deliver a byte-identical object."""
        cloud, svc, src, dst, rule = build(seed=104)
        faas = cloud.faas("aws:us-east-1")
        faas.chaos_crash_prob = 0.25
        faas.chaos_mean_delay_s = 1.0
        blob = Blob.fresh(GB)
        src.put_object("big", blob, cloud.now)
        cloud.run()
        assert dst.head("big").etag == blob.etag
        assert svc.pending_count() == 0
        assert faas.chaos_crashes >= 1

    def test_single_function_replication_survives_crash(self):
        cloud, svc, src, dst, rule = build(seed=105)
        for region in ("aws:us-east-1", "azure:eastus"):
            cloud.faas(region).chaos_crash_prob = 0.4
            cloud.faas(region).chaos_mean_delay_s = 0.5
        blobs = {}
        for i in range(10):
            blobs[f"k{i}"] = Blob.fresh(4 * MB)
            src.put_object(f"k{i}", blobs[f"k{i}"], cloud.now)
        cloud.run()
        for key, blob in blobs.items():
            assert dst.head(key).etag == blob.etag
        assert svc.pending_count() == 0

    def test_orphan_recovery_counts_recovered_parts(self):
        cloud, svc, src, dst, rule = build(seed=106)
        faas = cloud.faas("aws:us-east-1")
        faas.chaos_crash_prob = 0.5
        faas.chaos_mean_delay_s = 0.8
        src.put_object("big", Blob.fresh(GB), cloud.now)
        cloud.run()
        assert dst.head("big").etag == src.head("big").etag
        # Either recovery kicked in or retries redid the work — both
        # paths must leave no duplicate completions unaccounted.
        assert svc.pending_count() == 0

    def test_fair_mode_survives_crashes_via_retry(self):
        cloud = build_default_cloud(seed=107)
        config = ReplicaConfig(profile_samples=6, mc_samples=500)
        svc = AReplicaService(cloud, config)
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("azure:eastus", "dst")
        svc.add_rule(src, dst, scheduling="fair")
        faas = cloud.faas("aws:us-east-1")
        faas.chaos_crash_prob = 0.3
        faas.chaos_mean_delay_s = 1.0
        blob = Blob.fresh(512 * MB)
        src.put_object("big", blob, cloud.now)
        cloud.run()
        assert dst.head("big").etag == blob.etag

    def test_duplicate_completions_counted_once(self):
        """A retried worker redoing an already-done part must not
        double-count toward task completion."""
        cloud = build_default_cloud(seed=108)
        table = cloud.kv_table("aws:us-east-1", "s")
        from repro.core.partpool import PartPool

        pool = PartPool(table, "t", 3)

        def main():
            yield from pool.create()
            finishes = []
            for idx in (0, 1, 1, 0, 2):  # duplicates interleaved
                finishes.append((yield from pool.complete(idx)))
            return finishes

        finishes = cloud.sim.run_process(main())
        assert finishes == [False, False, False, False, True]
        assert pool.peek_progress()["duplicates"] == 2

    def test_missing_parts_reflects_done_set(self):
        cloud = build_default_cloud(seed=109)
        table = cloud.kv_table("aws:us-east-1", "s")
        from repro.core.partpool import PartPool

        pool = PartPool(table, "t", 4)

        def main():
            yield from pool.create()
            yield from pool.complete(1)
            yield from pool.complete(3)
            return (yield from pool.missing_parts())

        assert cloud.sim.run_process(main()) == [0, 2]

    def test_try_reclaim_single_winner(self):
        cloud = build_default_cloud(seed=110)
        table = cloud.kv_table("aws:us-east-1", "s")
        from repro.core.partpool import PartPool

        pool = PartPool(table, "t", 4)
        wins = []

        def claimer(i):
            won = yield from pool.try_reclaim(2, owner=f"w{i}", now=cloud.now)
            wins.append(won)

        def main():
            yield from pool.create()
            yield cloud.sim.all_of([cloud.sim.spawn(claimer(i))
                                    for i in range(5)])

        cloud.sim.run_process(main())
        assert sum(wins) == 1


class TestEndToEndChaosWorkload:
    def test_bursty_workload_with_chaos_converges(self):
        """A realistic mixed workload with 15 % crash probability on both
        platforms must still deliver every object and every delete."""
        cloud, svc, src, dst, rule = build(seed=111)
        for region in ("aws:us-east-1", "azure:eastus"):
            cloud.faas(region).chaos_crash_prob = 0.15
            cloud.faas(region).chaos_mean_delay_s = 0.5
        rng = np.random.default_rng(0)
        expected = {}
        for i in range(40):
            key = f"k{int(rng.integers(0, 12))}"
            if rng.random() < 0.15 and key in expected:
                src.delete_object(key, cloud.now)
                del expected[key]
            else:
                blob = Blob.fresh(int(rng.integers(1, 32)) * MB)
                src.put_object(key, blob, cloud.now)
                expected[key] = blob
        cloud.run()
        for key, blob in expected.items():
            assert dst.head(key).etag == blob.etag, key
        for key in set(dst.keys()) - set(expected):
            assert key not in src
        assert svc.pending_count() == 0
