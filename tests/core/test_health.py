"""Unit tests for the circuit-breaker health tracker.

Everything here drives a :class:`HealthTracker` directly with a manual
clock — no simulator, no engine — so each state-machine edge is pinned
in isolation: consecutive-failure opens, EWMA (brown-out) opens,
cooldown backoff across re-opens, half-open probe verdicts, and the
straggler-result guard.
"""

import pytest

from repro.core.health import (
    BreakerConfig,
    BreakerState,
    HealthTracker,
    NoRouteAvailable,
)

FAAS = ("faas", "aws:us-east-1")
KV = ("kv", "aws:us-east-1")


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class ManualScheduler:
    """Captures call_later-style timers and fires them on demand."""

    def __init__(self, clock):
        self.clock = clock
        self.timers = []

    def __call__(self, delay, fn):
        self.timers.append((self.clock.now + delay, fn))

    def run_due(self):
        due = [(t, fn) for t, fn in self.timers if t <= self.clock.now]
        self.timers = [(t, fn) for t, fn in self.timers if t > self.clock.now]
        for _, fn in sorted(due, key=lambda p: p[0]):
            fn()


def make(clock=None, schedule=None, **cfg):
    clock = clock or ManualClock()
    return clock, HealthTracker(clock=clock, schedule=schedule,
                                config=BreakerConfig(**cfg))


class TestBreakerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(ewma_threshold=1.5)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_s=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_backoff=0.9)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_s=60.0, cooldown_max_s=30.0)
        with pytest.raises(ValueError):
            BreakerConfig(half_open_successes=0)


class TestOpening:
    def test_unknown_target_is_closed(self):
        _, tracker = make()
        assert tracker.state(FAAS) == BreakerState.CLOSED
        assert tracker.available(FAAS)
        assert not tracker.any_open

    def test_consecutive_failures_open(self):
        _, tracker = make(failure_threshold=3)
        tracker.record(FAAS, False)
        tracker.record(FAAS, False)
        assert tracker.state(FAAS) == BreakerState.CLOSED
        tracker.record(FAAS, False)
        assert tracker.state(FAAS) == BreakerState.OPEN
        assert not tracker.available(FAAS)
        assert tracker.any_open
        assert tracker.open_targets() == [FAAS]

    def test_success_resets_the_failure_run(self):
        _, tracker = make(failure_threshold=3)
        for _ in range(10):
            tracker.record(FAAS, False)
            tracker.record(FAAS, False)
            tracker.record(FAAS, True)
        assert tracker.state(FAAS) == BreakerState.CLOSED

    def test_ewma_brownout_opens_without_a_run(self):
        # ~85% failures never string together the consecutive threshold
        # of 50, but the error-rate EWMA crosses 0.8 once warmed up.
        _, tracker = make(failure_threshold=50, ewma_threshold=0.8,
                          ewma_min_samples=20, ewma_alpha=0.2)
        pattern = [False] * 6 + [True]
        i = 0
        while tracker.state(KV) == BreakerState.CLOSED and i < 200:
            tracker.record(KV, pattern[i % len(pattern)])
            i += 1
        assert tracker.state(KV) == BreakerState.OPEN
        assert i >= 20  # not before the warm-up gate

    def test_ewma_needs_min_samples(self):
        _, tracker = make(failure_threshold=100, ewma_threshold=0.5,
                          ewma_min_samples=30)
        for _ in range(29):
            tracker.record(KV, False)
        # EWMA is far above threshold but the sample gate holds.
        assert tracker.state(KV) == BreakerState.CLOSED

    def test_targets_are_independent(self):
        _, tracker = make(failure_threshold=2)
        tracker.record(FAAS, False)
        tracker.record(FAAS, False)
        assert not tracker.available(FAAS)
        assert tracker.available(KV)


class TestRecovery:
    def test_lazy_half_open_after_cooldown(self):
        clock, tracker = make(failure_threshold=2, cooldown_s=30.0)
        tracker.record(FAAS, False)
        tracker.record(FAAS, False)
        clock.advance(29.9)
        assert tracker.state(FAAS) == BreakerState.OPEN
        clock.advance(0.2)
        # No scheduler: the query itself applies the transition.
        assert tracker.state(FAAS) == BreakerState.HALF_OPEN
        assert tracker.available(FAAS)
        assert not tracker.any_open

    def test_half_open_success_closes_with_clean_slate(self):
        clock, tracker = make(failure_threshold=2, cooldown_s=10.0)
        tracker.record(FAAS, False)
        tracker.record(FAAS, False)
        clock.advance(10.0)
        assert tracker.state(FAAS) == BreakerState.HALF_OPEN
        tracker.record(FAAS, True)
        assert tracker.state(FAAS) == BreakerState.CLOSED
        b = tracker._breakers[FAAS]
        # Pre-outage error history must not re-trip on the next hiccup.
        assert b.ewma == 0.0 and b.samples == 0 and b.streak_opens == 0
        tracker.record(FAAS, False)
        assert tracker.state(FAAS) == BreakerState.CLOSED

    def test_half_open_failure_reopens_with_backoff(self):
        clock, tracker = make(failure_threshold=2, cooldown_s=10.0,
                              cooldown_backoff=2.0, cooldown_max_s=35.0)
        tracker.record(FAAS, False)
        tracker.record(FAAS, False)
        b = tracker._breakers[FAAS]
        assert b.open_until == pytest.approx(clock.now + 10.0)
        clock.advance(10.0)
        assert tracker.state(FAAS) == BreakerState.HALF_OPEN
        tracker.record(FAAS, False)  # probe failed
        assert tracker.state(FAAS) == BreakerState.OPEN
        assert b.open_until == pytest.approx(clock.now + 20.0)
        clock.advance(20.0)
        assert tracker.state(FAAS) == BreakerState.HALF_OPEN
        tracker.record(FAAS, False)
        # 10 * 2**2 = 40 exceeds the cap; 35 applies.
        assert b.open_until == pytest.approx(clock.now + 35.0)

    def test_results_arriving_while_open_are_ignored(self):
        clock, tracker = make(failure_threshold=2, cooldown_s=60.0)
        tracker.record(FAAS, False)
        tracker.record(FAAS, False)
        # An in-flight straggler succeeding must not short the cooldown.
        tracker.record(FAAS, True)
        tracker.record(FAAS, False)
        assert tracker.state(FAAS) == BreakerState.OPEN
        b = tracker._breakers[FAAS]
        assert b.opens_total == 1  # the straggler failure didn't re-open

    def test_scheduled_half_open_fires_without_traffic(self):
        clock = ManualClock()
        sched = ManualScheduler(clock)
        _, tracker = make(clock=clock, schedule=sched,
                          failure_threshold=2, cooldown_s=30.0)
        tracker.record(FAAS, False)
        tracker.record(FAAS, False)
        assert len(sched.timers) == 1
        clock.advance(30.0)
        sched.run_due()
        # The timer itself moved the state; no query was needed.
        assert tracker._breakers[FAAS].state == BreakerState.HALF_OPEN

    def test_stale_timer_from_earlier_epoch_is_inert(self):
        clock = ManualClock()
        sched = ManualScheduler(clock)
        _, tracker = make(clock=clock, schedule=sched,
                          failure_threshold=2, cooldown_s=10.0)
        tracker.record(FAAS, False)
        tracker.record(FAAS, False)
        clock.advance(10.0)
        sched.run_due()                      # half-open
        tracker.record(FAAS, False)          # probe fails: re-open (epoch 2)
        # The epoch-1 timer is gone; fire whatever remains early and
        # confirm the epoch guard keeps the breaker open.
        for _, fn in list(sched.timers):
            fn()
        assert tracker._breakers[FAAS].state == BreakerState.OPEN


class TestCordon:
    """The administrative ``cordoned`` state: intent, not failure."""

    def test_cordon_excludes_and_uncordon_restores(self):
        _, tracker = make(failure_threshold=2)
        assert tracker.cordon(FAAS)
        assert tracker.state(FAAS) == BreakerState.CORDONED
        assert not tracker.available(FAAS)
        assert tracker.is_cordoned(FAAS)
        assert tracker.any_open
        assert tracker.cordoned_targets() == [FAAS]
        assert tracker.uncordon(FAAS)
        assert tracker.state(FAAS) == BreakerState.CLOSED
        assert tracker.available(FAAS)
        assert not tracker.any_open

    def test_cordon_is_idempotent(self):
        _, tracker = make(failure_threshold=2)
        assert tracker.cordon(FAAS)
        assert not tracker.cordon(FAAS), "second cordon must report no-op"
        assert not tracker.uncordon(KV), "uncordon of uncordoned is a no-op"

    def test_cordon_notifies_subscribers(self):
        _, tracker = make(failure_threshold=2)
        seen = []
        tracker.subscribe(lambda t, s: seen.append((t, s)))
        tracker.cordon(FAAS)
        tracker.uncordon(FAAS)
        assert seen == [(FAAS, BreakerState.CORDONED),
                        (FAAS, BreakerState.UNCORDONED)]

    def test_cordon_wins_over_half_open_probe(self):
        """Regression: an administrative cordon on a target whose
        breaker is mid-cooldown must suppress the scheduled half-open
        probe — maintenance intent outranks the breaker's own recovery
        — and re-admission must resume once the cordon lifts."""
        clock = ManualClock()
        sched = ManualScheduler(clock)
        _, tracker = make(clock=clock, schedule=sched,
                          failure_threshold=2, cooldown_s=10.0)
        tracker.record(FAAS, False)
        tracker.record(FAAS, False)
        assert tracker.state(FAAS) == BreakerState.OPEN
        tracker.cordon(FAAS)
        clock.advance(10.5)
        sched.run_due()  # the cooldown timer fires into the cordon
        assert tracker.state(FAAS) == BreakerState.CORDONED
        assert not tracker.available(FAAS), \
            "half-open probe re-admitted traffic through a cordon"
        # Lifting the cordon resumes the breaker's own recovery: the
        # cooldown has long elapsed, so the next query walks half-open.
        tracker.uncordon(FAAS)
        assert tracker.state(FAAS) == BreakerState.HALF_OPEN
        assert tracker.available(FAAS)
        tracker.record(FAAS, True)
        assert tracker.state(FAAS) == BreakerState.CLOSED

    def test_lazy_half_open_query_respects_cordon(self):
        clock, tracker = make(failure_threshold=2, cooldown_s=10.0)
        tracker.record(FAAS, False)
        tracker.record(FAAS, False)
        tracker.cordon(FAAS)
        clock.advance(11.0)
        # No scheduler here: the lazy query path must also hold the line.
        assert tracker.state(FAAS) == BreakerState.CORDONED
        assert not tracker.available(FAAS)


class TestObservability:
    def test_transitions_log_records_every_edge(self):
        clock, tracker = make(failure_threshold=2, cooldown_s=10.0)
        tracker.record(FAAS, False)
        tracker.record(FAAS, False)
        clock.advance(10.0)
        tracker.state(FAAS)
        tracker.record(FAAS, True)
        states = [s for _, t, s in tracker.transitions if t == FAAS]
        assert states == [BreakerState.OPEN, BreakerState.HALF_OPEN,
                          BreakerState.CLOSED]
        times = [at for at, _, _ in tracker.transitions]
        assert times == sorted(times)

    def test_subscribers_see_transitions_in_order(self):
        clock, tracker = make(failure_threshold=1, cooldown_s=5.0)
        seen = []
        tracker.subscribe(lambda t, s: seen.append(("a", t, s)))
        tracker.subscribe(lambda t, s: seen.append(("b", t, s)))
        tracker.record(FAAS, False)
        assert seen == [("a", FAAS, BreakerState.OPEN),
                        ("b", FAAS, BreakerState.OPEN)]

    def test_snapshot_is_json_shaped(self):
        _, tracker = make(failure_threshold=2)
        tracker.record(FAAS, False)
        tracker.record(FAAS, False)
        tracker.record(KV, True)
        snap = tracker.snapshot()
        assert set(snap) == {"faas:aws:us-east-1", "kv:aws:us-east-1"}
        assert snap["faas:aws:us-east-1"]["state"] == BreakerState.OPEN
        assert snap["faas:aws:us-east-1"]["opens"] == 1
        assert snap["kv:aws:us-east-1"]["state"] == BreakerState.CLOSED

    def test_no_route_available_is_a_runtime_error(self):
        assert issubclass(NoRouteAvailable, RuntimeError)
