"""Tests for replication topologies (star / chain / mesh)."""

import math

import pytest

from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.core.topology import ReplicationTopology
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024


def make_service(seed):
    cloud = build_default_cloud(seed=seed)
    svc = AReplicaService(cloud, ReplicaConfig(profile_samples=5,
                                               mc_samples=300))
    return cloud, svc


class TestStar:
    def test_fanout_replicates_everywhere(self):
        cloud, svc = make_service(1101)
        primary = cloud.bucket("aws:us-east-1", "primary")
        replicas = [cloud.bucket("azure:eastus", "r1"),
                    cloud.bucket("gcp:us-east1", "r2")]
        topo = ReplicationTopology.star(svc, primary, replicas)
        blob = Blob.fresh(8 * MB)
        primary.put_object("k", blob, cloud.now)
        cloud.run()
        assert topo.converged()
        for replica in replicas:
            assert replica.head("k").etag == blob.etag

    def test_star_needs_replicas(self):
        cloud, svc = make_service(1102)
        with pytest.raises(ValueError):
            ReplicationTopology.star(svc, cloud.bucket("aws:us-east-1", "p"),
                                     [])

    def test_duplicate_bucket_rejected(self):
        cloud, svc = make_service(1103)
        p = cloud.bucket("aws:us-east-1", "p")
        r = cloud.bucket("azure:eastus", "r")
        with pytest.raises(ValueError):
            ReplicationTopology.star(svc, p, [r, r])


class TestChain:
    def test_cascade_propagates_to_the_end(self):
        cloud, svc = make_service(1104)
        hops = [cloud.bucket("aws:us-east-1", "a"),
                cloud.bucket("azure:eastus", "b"),
                cloud.bucket("gcp:us-east1", "c")]
        topo = ReplicationTopology.chain(svc, hops)
        blob = Blob.fresh(4 * MB)
        hops[0].put_object("k", blob, cloud.now)
        cloud.run()
        assert topo.converged()
        assert hops[2].head("k").etag == blob.etag
        # Delay accumulates down the chain.
        profile = topo.delay_profile()
        first = profile["aws:us-east-1->azure:eastus"]
        assert first["count"] == 1

    def test_chain_needs_two(self):
        cloud, svc = make_service(1105)
        with pytest.raises(ValueError):
            ReplicationTopology.chain(svc, [cloud.bucket("aws:us-east-1", "a")])

    def test_chain_delete_propagates(self):
        cloud, svc = make_service(1106)
        hops = [cloud.bucket("aws:us-east-1", "a"),
                cloud.bucket("aws:us-east-2", "b"),
                cloud.bucket("aws:us-west-2", "c")]
        topo = ReplicationTopology.chain(svc, hops)
        hops[0].put_object("k", Blob.fresh(MB), cloud.now)
        cloud.run()
        hops[0].delete_object("k", cloud.now)
        cloud.run()
        assert topo.converged()
        assert "k" not in hops[2]


class TestMesh:
    def test_mesh_converges_from_any_writer(self):
        cloud, svc = make_service(1107)
        sites = [cloud.bucket("aws:us-east-1", "a"),
                 cloud.bucket("azure:eastus", "b"),
                 cloud.bucket("gcp:us-east1", "c")]
        topo = ReplicationTopology.mesh(svc, sites)
        assert len(topo.rules) == 6
        blob_a = Blob.fresh(2 * MB)
        blob_b = Blob.fresh(2 * MB)
        sites[0].put_object("from-a", blob_a, cloud.now)
        sites[1].put_object("from-b", blob_b, cloud.now)
        cloud.run()  # terminates: short-circuits quench the echoes
        assert topo.converged()
        for site in sites:
            assert site.head("from-a").etag == blob_a.etag
            assert site.head("from-b").etag == blob_b.etag

    def test_divergence_reporting(self):
        cloud, svc = make_service(1108)
        sites = [cloud.bucket("aws:us-east-1", "a"),
                 cloud.bucket("aws:us-east-2", "b")]
        topo = ReplicationTopology.mesh(svc, sites)
        sites[0].put_object("k", Blob.fresh(MB), cloud.now)
        # Before the simulation runs, the write has not propagated.
        assert not topo.converged()
        assert any("k" in keys for keys in topo.divergence().values())
        cloud.run()
        assert topo.converged()
        assert topo.divergence() == {}

    def test_delay_profile_nan_when_idle(self):
        cloud, svc = make_service(1109)
        topo = ReplicationTopology.star(
            svc, cloud.bucket("aws:us-east-1", "p"),
            [cloud.bucket("aws:us-east-2", "r")])
        profile = topo.delay_profile()
        [(label, row)] = profile.items()
        assert row["count"] == 0.0
        assert math.isnan(row["mean"])
