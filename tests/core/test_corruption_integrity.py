"""End-to-end data-integrity suites: silent corruption, quarantine, scrub.

Offense: the chaos layer flips bits on WAN transfers, rots stored
objects, truncates reads and misreports ETags.  Defense: the engine
verifies every part before it enters the part pool, retransfers under a
bounded budget, quarantines poison parts to the DLQ, and verifies the
destination before the done marker; deep scrub re-verifies bytes behind
matching reported ETags; the client re-checks what it reads.

The property under test: **no injected corruption is ever silently
finalized** — every fault is either detected-and-repaired in place,
surfaced through quarantine/DLQ, or caught later by scrub; the trace
checker and the quiescent audit both come back clean once the storm
passes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.audit import ReplicationAuditor
from repro.core.client import ClientIntegrityError, ReplicatedBucketClient
from repro.core.config import ReplicaConfig
from repro.core.invariants import TraceChecker
from repro.core.repair import AntiEntropyScanner
from repro.core.service import AReplicaService
from repro.simcloud.chaos import ChaosConfig
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.cost import CostCategory
from repro.simcloud.objectstore import Blob

pytestmark = pytest.mark.scrub

KB = 1024
MB = 1024 * 1024
SRC = "aws:us-east-1"
DST = "azure:eastus"

#: Corruption-only storm: every fault lands on a data path the engine
#: verifies, so detections must account for every single injection.
CORRUPTION_STORM = ChaosConfig(
    corrupt_get_prob=0.15, corrupt_put_prob=0.10,
    corrupt_at_rest_prob=0.05, corrupt_truncate_prob=0.05,
    corrupt_wrong_etag_prob=0.05,
)

#: Corruption mixed into the full chaos-convergence storm (crashes,
#: notification faults, KV throttling, WAN stalls) — the satellite-3
#: requirement.  Crashes can sever an injection from its verifying
#: read, so this storm asserts *outcomes* (clean audit, clean trace,
#: byte-identical buckets), not exact fault accounting.
MIXED_STORM = ChaosConfig(
    crash_prob=0.05,
    notif_drop_prob=0.06, notif_dup_prob=0.06, notif_reorder_prob=0.06,
    notif_redelivery_s=20.0,
    kv_reject_prob=0.06, kv_delay_prob=0.06,
    wan_stall_prob=0.02,
    corrupt_get_prob=0.10, corrupt_put_prob=0.06,
    corrupt_at_rest_prob=0.04, corrupt_truncate_prob=0.04,
    corrupt_wrong_etag_prob=0.04,
)


def corrupted_soak(seed: int, chaos: ChaosConfig, **config_kw):
    """The chaos-convergence soak workload under corruption faults,
    with the tracer recording so the integrity oracle can judge it."""
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(profile_samples=4, mc_samples=300,
                           tracing_enabled=True, **config_kw)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket(SRC, "src")
    dst = cloud.bucket(DST, "dst")
    rule = svc.add_rule(src, dst)
    cloud.apply_chaos(chaos)

    rng = cloud.rngs.stream("chaos-workload")
    keys = [f"obj{i}" for i in range(6)]
    t = 1.0
    for _ in range(25):
        t += float(rng.exponential(2.0))
        key = keys[int(rng.integers(len(keys)))]
        if rng.random() < 0.2:
            cloud.sim.call_later(t, lambda k=key: (
                k in src and src.delete_object(k, cloud.sim.now)))
        else:
            size = int(rng.integers(1, 64)) * KB
            cloud.sim.call_later(t, lambda k=key, s=size: src.put_object(
                k, Blob.fresh(s), cloud.sim.now))
    # One large multipart transfer so per-part verification, retransfer
    # budgets and quarantine all run under the storm.
    cloud.sim.call_later(t / 2, lambda: src.put_object(
        "obj-big", Blob.fresh(48 * MB), cloud.sim.now))
    cloud.run()

    cloud.apply_chaos(None)
    svc.run_to_convergence()
    return cloud, svc, src, dst, rule


def assert_byte_identical(src, dst):
    """Stronger than the usual ETag diff: compare the *stored* content
    hashes, which a lying reported ETag cannot mask."""
    for key in src.keys():
        assert dst.head(key).blob.etag == src.head(key).blob.etag, key


# ---------------------------------------------------------------------------
# corruption-only storm: exact fault accounting
# ---------------------------------------------------------------------------

def test_pure_corruption_storm_accounts_for_every_fault():
    cloud, svc, src, dst, rule = corrupted_soak(4321, CORRUPTION_STORM)
    report = ReplicationAuditor(svc).audit(quiescent=True)
    assert report.clean, report.render()
    assert svc.pending_count() == 0
    assert_byte_identical(src, dst)

    injected = cloud.corruption_injected()
    assert injected > 0, "storm injected nothing — probabilities too low"
    integrity = svc.integrity_snapshot()
    # Without crashes every faulted read reaches a verifying consumer,
    # so detections must account for every injection (1:1 by design:
    # one fault per read, one verdict per read).
    assert integrity["corrupt_detected"] >= injected
    assert rule.engine.stats["corrupt_detected"] == \
        integrity["corrupt_detected"]
    # The bounded-budget re-fetch path actually ran.
    assert rule.engine.stats["retransfers"] > 0
    # The snapshot's shape is part of the CLI contract (corruption-drill
    # serializes it verbatim).
    assert set(integrity) == {
        "injected", "corrupt_detected", "retransfers", "quarantined",
        "finalize_verify_failed", "quarantined_dead_letters",
    }

    trace = TraceChecker(svc).check()
    assert trace.clean, trace.render()
    assert trace.checked["verified_finalizes"] > 0
    assert trace.checked["corruption_detections"] > 0


# ---------------------------------------------------------------------------
# mixed storm: corruption + crashes + notification/KV/WAN chaos
# ---------------------------------------------------------------------------

@given(seed=st.integers(0, 10_000))
@settings(max_examples=6, deadline=None)
def test_mixed_chaos_and_corruption_storm_converges_clean(seed):
    cloud, svc, src, dst, rule = corrupted_soak(seed, MIXED_STORM)
    report = ReplicationAuditor(svc).audit(quiescent=True)
    # A clean quiescent audit includes zero silent-divergence findings:
    # no undetected corruption survives in the destination.
    assert report.clean, f"seed {seed}:\n{report.render()}"
    assert svc.pending_count() == 0
    trace = TraceChecker(svc).check()
    assert trace.clean, f"seed {seed}:\n{trace.render()}"
    assert_byte_identical(src, dst)


def test_fixed_seed_mixed_storm_smoke():
    """Deterministic tier-1 smoke: one seed that demonstrably injects
    corruption alongside the legacy fault classes and still converges."""
    cloud, svc, src, dst, rule = corrupted_soak(1234, MIXED_STORM)
    assert ReplicationAuditor(svc).audit(quiescent=True).clean
    stats = cloud.chaos_stats()
    assert cloud.corruption_injected() > 0
    assert stats["faas_crashes"] + stats["notifications_dropped"] > 0
    assert rule.engine.stats["corrupt_detected"] > 0


# ---------------------------------------------------------------------------
# quarantine: poison parts under an exhausted retransfer budget
# ---------------------------------------------------------------------------

def test_exhausted_budget_quarantines_then_redrive_heals():
    """With a zero retransfer budget every detected corruption is a
    poison part: the task must dead-letter with the ``corrupted``
    disposition instead of burning platform retries, and the post-storm
    redrive must heal it completely."""
    cloud, svc, src, dst, rule = corrupted_soak(
        99, ChaosConfig(corrupt_get_prob=0.5, corrupt_put_prob=0.3),
        retransfer_budget=0)

    assert rule.engine.stats["quarantined"] > 0
    assert rule.engine.stats["retransfers"] == 0     # budget is zero
    integrity = svc.integrity_snapshot()
    assert integrity["quarantined_dead_letters"] > 0

    # corrupted_soak already cleared the storm and ran the DLQ redrive:
    # the quarantined tasks must have healed, not leaked.
    assert ReplicationAuditor(svc).audit(quiescent=True).clean
    assert svc.pending_count() == 0
    assert_byte_identical(src, dst)
    trace = TraceChecker(svc).check()
    assert trace.clean, trace.render()


# ---------------------------------------------------------------------------
# deep scrub: durable bit rot behind a truthful-looking HEAD
# ---------------------------------------------------------------------------

class TestDeepScrub:
    def _replicated(self, seed=505):
        cloud = build_default_cloud(seed=seed)
        config = ReplicaConfig(profile_samples=4, mc_samples=300,
                               tracing_enabled=True)
        svc = AReplicaService(cloud, config)
        src = cloud.bucket(SRC, "src")
        dst = cloud.bucket(DST, "dst")
        rule = svc.add_rule(src, dst)
        for i in range(6):
            src.put_object(f"k{i}", Blob.fresh(MB), cloud.now)
        cloud.run()
        assert svc.pending_count() == 0
        return cloud, svc, src, dst, rule

    def test_scrub_catches_rot_a_shallow_scan_cannot(self):
        cloud, svc, src, dst, rule = self._replicated()
        reported, true_etag = dst.rot_object("k2")
        assert reported != true_etag          # the HEAD now lies

        scanner = AntiEntropyScanner(svc)
        # The shallow ETag diff is blind to silent rot ...
        assert scanner.scan(rule, redrive=False).clean
        # ... the quiescent audit's byte-level cross-check is not ...
        audit = ReplicationAuditor(svc).audit(quiescent=True)
        assert {f.kind for f in audit.findings} == {"silent-divergence"}
        # ... and deep scrub both finds and names it.
        found = scanner.scan(rule, redrive=False, scrub=True)
        assert [f.key for f in found.by_kind("corrupt")] == ["k2"]
        assert found.scrubbed == 6

        healed = scanner.scan(rule, redrive=True, scrub=True)
        assert healed.redriven == 1
        cloud.run()
        assert dst.head("k2").blob.etag == src.head("k2").blob.etag
        assert scanner.scan(rule, redrive=False, scrub=True).clean
        assert ReplicationAuditor(svc).audit(quiescent=True).clean
        trace = TraceChecker(svc).check()
        assert trace.clean, trace.render()

    def test_scrub_work_is_charged_to_the_cost_model(self):
        cloud, svc, src, dst, rule = self._replicated(seed=506)
        before_store = cloud.ledger.total(CostCategory.STORAGE_REQUESTS)
        before_egress = cloud.ledger.total(CostCategory.EGRESS)
        before_kv = cloud.ledger.total(CostCategory.KV_OPS)

        dst.rot_object("k0")
        AntiEntropyScanner(svc).scan(rule, redrive=False, scrub=True)
        # LIST pages + per-key scrub GETs land on storage requests, the
        # scrubbed bytes on egress, the marker lookup on KV ops.
        assert cloud.ledger.total(CostCategory.STORAGE_REQUESTS) > \
            before_store
        assert cloud.ledger.total(CostCategory.EGRESS) > before_egress
        assert cloud.ledger.total(CostCategory.KV_OPS) > before_kv


# ---------------------------------------------------------------------------
# client: the user-facing end of the integrity chain
# ---------------------------------------------------------------------------

class TestClientVerification:
    def _client(self, seed=601):
        cloud = build_default_cloud(seed=seed)
        svc = AReplicaService(cloud, ReplicaConfig(profile_samples=4,
                                                   mc_samples=300))
        src = cloud.bucket(SRC, "src")
        rule = svc.add_rule(src, cloud.bucket(DST, "dst"))
        client = ReplicatedBucketClient(cloud, src, rule.changelog)
        return cloud, src, client

    def test_verified_get_clean_path(self):
        cloud, src, client = self._client()
        blob = Blob.fresh(MB)
        client.run(client.put("k", blob))
        payload, version = client.run(client.verified_get("k"))
        assert payload.etag == blob.etag
        assert client.stats["verified_gets"] == 1
        assert client.stats["integrity_retries"] == 0

    def test_verified_get_surfaces_durable_rot(self):
        cloud, src, client = self._client(seed=602)
        client.run(client.put("k", Blob.fresh(MB)))
        src.rot_object("k")
        with pytest.raises(ClientIntegrityError):
            client.run(client.verified_get("k"))
        assert client.stats["integrity_failures"] == 1

    def test_verified_get_retries_through_transient_faults(self):
        cloud, src, client = self._client(seed=603)
        client.run(client.put("k", Blob.fresh(MB)))
        cloud.run()
        cloud.apply_chaos(ChaosConfig(corrupt_at_rest_prob=0.4))
        outcomes = {"ok": 0, "failed": 0}
        for _ in range(25):
            try:
                client.run(client.verified_get("k"))
                outcomes["ok"] += 1
            except ClientIntegrityError:
                outcomes["failed"] += 1
        cloud.apply_chaos(None)
        # Transient medium faults: a single re-read absorbed some of
        # them, and the stored object itself never actually rotted.
        assert client.stats["integrity_retries"] > 0
        assert outcomes["ok"] > 0
        assert src.head("k").blob.etag == src.head("k").etag
