"""Tests for the decentralized part pool (Algorithm 1) and the
replication lock (Algorithm 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.locks import ReplicationLockManager
from repro.core.partpool import FairAssignment, PartPool
from repro.simcloud.cloud import build_default_cloud


@pytest.fixture
def cloud():
    return build_default_cloud(seed=9)


@pytest.fixture
def table(cloud):
    return cloud.kv_table("aws:us-east-1", "state")


def run(cloud, gen):
    return cloud.sim.run_process(gen)


class TestPartPool:
    def test_claims_are_unique_and_complete(self, cloud, table):
        pool = PartPool(table, "t1", 10)
        claimed = []

        def worker():
            while True:
                idx = yield from pool.claim()
                if idx is None:
                    return
                claimed.append(idx)
                yield from pool.complete(idx)

        def main():
            yield from pool.create()
            yield cloud.sim.all_of([cloud.sim.spawn(worker()) for _ in range(4)])

        run(cloud, main())
        assert sorted(claimed) == list(range(10))

    def test_exactly_one_finisher(self, cloud, table):
        pool = PartPool(table, "t2", 7)
        finishers = []

        def worker(i):
            while True:
                idx = yield from pool.claim()
                if idx is None:
                    return
                done = yield from pool.complete(idx)
                if done:
                    finishers.append(i)

        def main():
            yield from pool.create()
            yield cloud.sim.all_of([cloud.sim.spawn(worker(i)) for i in range(3)])

        run(cloud, main())
        assert len(finishers) == 1

    def test_fast_workers_claim_more(self, cloud, table):
        """The point of decentralized scheduling: throughput-proportional
        part counts (Fig 12)."""
        pool = PartPool(table, "t3", 12)
        counts = {"fast": 0, "slow": 0}

        def worker(name, per_part_s):
            while True:
                idx = yield from pool.claim()
                if idx is None:
                    return
                yield cloud.sim.sleep(per_part_s)
                counts[name] += 1
                yield from pool.complete(idx)

        def main():
            yield from pool.create()
            yield cloud.sim.all_of([
                cloud.sim.spawn(worker("fast", 0.25)),
                cloud.sim.spawn(worker("slow", 0.5)),
            ])

        run(cloud, main())
        assert counts["fast"] > counts["slow"]
        assert counts["fast"] + counts["slow"] == 12

    def test_two_kv_ops_per_part(self, cloud, table):
        """§5.1: decentralized scheduling triggers only two external
        storage accesses per data part."""
        pool = PartPool(table, "t4", 5)

        def worker():
            while True:
                idx = yield from pool.claim()
                if idx is None:
                    return
                yield from pool.complete(idx)

        def main():
            yield from pool.create()
            yield cloud.sim.spawn(worker())

        run(cloud, main())
        # 1 create + (5+1) claims (last returns None) + 5 completes.
        assert table.op_counts["write"] == 1 + 6 + 5

    def test_abort_first_claimer_only(self, cloud, table):
        pool = PartPool(table, "t5", 4)
        results = []

        def aborter():
            first = yield from pool.abort()
            results.append(first)

        def main():
            yield from pool.create()
            yield cloud.sim.all_of([cloud.sim.spawn(aborter()) for _ in range(3)])

        run(cloud, main())
        assert sorted(results) == [False, False, True]

    def test_is_aborted_flag(self, cloud, table):
        pool = PartPool(table, "t6", 4)

        def main():
            yield from pool.create()
            before = yield from pool.is_aborted()
            yield from pool.abort()
            after = yield from pool.is_aborted()
            return before, after

        assert run(cloud, main()) == (False, True)

    def test_zero_parts_rejected(self, table):
        with pytest.raises(ValueError):
            PartPool(table, "t", 0)


class TestFairAssignment:
    def test_even_split(self):
        fa = FairAssignment(8, 4)
        assert fa.all_assignments() == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_uneven_split_front_loaded(self):
        fa = FairAssignment(10, 4)
        sizes = [len(p) for p in fa.all_assignments()]
        assert sizes == [3, 3, 2, 2]

    def test_covers_all_parts_exactly_once(self):
        fa = FairAssignment(13, 5)
        flat = [i for parts in fa.all_assignments() for i in parts]
        assert sorted(flat) == list(range(13))

    def test_more_workers_than_parts(self):
        fa = FairAssignment(2, 5)
        sizes = [len(p) for p in fa.all_assignments()]
        assert sizes == [1, 1, 0, 0, 0]

    def test_bad_index_rejected(self):
        with pytest.raises(IndexError):
            FairAssignment(4, 2).parts_for(2)

    @given(parts=st.integers(1, 200), workers=st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_partition_property(self, parts, workers):
        fa = FairAssignment(parts, workers)
        flat = sorted(i for p in fa.all_assignments() for i in p)
        assert flat == list(range(parts))
        sizes = [len(p) for p in fa.all_assignments()]
        assert max(sizes) - min(sizes) <= 1


class TestReplicationLock:
    def test_acquire_release(self, cloud, table):
        mgr = ReplicationLockManager(table)

        def main():
            outcome = yield from mgr.lock("k", "e1", 1, owner="a")
            assert outcome.acquired
            assert mgr.is_locked("k")
            pending = yield from mgr.unlock("k", owner="a")
            return pending

        assert run(cloud, main()) is None
        assert not table.peek("lock:k")

    def test_contention_registers_pending(self, cloud, table):
        mgr = ReplicationLockManager(table)

        def main():
            yield from mgr.lock("k", "e1", 1, owner="a")
            second = yield from mgr.lock("k", "e2", 2, owner="b")
            assert not second.acquired
            assert second.registered_pending
            pending = yield from mgr.unlock("k", owner="a")
            return pending

        pending = run(cloud, main())
        assert pending.etag == "e2"
        assert pending.seq == 2

    def test_only_newest_pending_kept(self, cloud, table):
        mgr = ReplicationLockManager(table)

        def main():
            yield from mgr.lock("k", "e1", 1, owner="a")
            yield from mgr.lock("k", "e3", 3, owner="c")
            older = yield from mgr.lock("k", "e2", 2, owner="b")
            assert not older.registered_pending  # e3 is newer, e2 can quit
            pending = yield from mgr.unlock("k", owner="a")
            return pending

        pending = run(cloud, main())
        assert pending.etag == "e3"

    def test_unlock_by_non_owner_is_noop(self, cloud, table):
        mgr = ReplicationLockManager(table)

        def main():
            yield from mgr.lock("k", "e1", 1, owner="a")
            pending = yield from mgr.unlock("k", owner="z")
            return pending

        assert run(cloud, main()) is None
        assert table.peek("lock:k") is not None

    def test_expired_lease_stolen(self, cloud, table):
        mgr = ReplicationLockManager(table, lease_s=10.0)

        def main():
            yield from mgr.lock("k", "e1", 1, owner="dead")
            yield cloud.sim.sleep(11.0)
            outcome = yield from mgr.lock("k", "e2", 2, owner="alive")
            return outcome

        outcome = run(cloud, main())
        assert outcome.acquired
        assert table.peek("lock:k")["owner"] == "alive"

    def test_steal_preserves_pending(self, cloud, table):
        mgr = ReplicationLockManager(table, lease_s=10.0)

        def main():
            yield from mgr.lock("k", "e1", 1, owner="dead")
            yield from mgr.lock("k", "e2", 2, owner="waiter")
            yield cloud.sim.sleep(11.0)
            yield from mgr.lock("k", "e3", 3, owner="alive")
            pending = yield from mgr.unlock("k", owner="alive")
            return pending

        pending = run(cloud, main())
        assert pending.etag == "e2"

    def test_concurrent_lockers_single_winner(self, cloud, table):
        mgr = ReplicationLockManager(table)
        outcomes = []

        def locker(i):
            outcome = yield from mgr.lock("k", f"e{i}", i, owner=f"o{i}")
            outcomes.append(outcome.acquired)

        def main():
            yield cloud.sim.all_of(
                [cloud.sim.spawn(locker(i)) for i in range(1, 9)]
            )

        run(cloud, main())
        assert sum(outcomes) == 1


class TestFencing:
    def test_fence_bumps_only_on_ownership_change(self, cloud, table):
        mgr = ReplicationLockManager(table, lease_s=10.0)

        def main():
            first = yield from mgr.lock("k", "e1", 1, owner="a")
            # A platform-retried holder re-enters its own lock: same
            # token, even after the lease lapsed (nobody stole it).
            again = yield from mgr.lock("k", "e1", 1, owner="a")
            yield cloud.sim.sleep(11.0)
            expired = yield from mgr.lock("k", "e1", 1, owner="a")
            yield cloud.sim.sleep(11.0)
            stolen = yield from mgr.lock("k", "e2", 2, owner="b")
            return first, again, expired, stolen

        first, again, expired, stolen = run(cloud, main())
        assert first.fence == again.fence == expired.fence == 1
        assert stolen.acquired and stolen.fence == 2

    def test_verify_detects_steal_and_release(self, cloud, table):
        mgr = ReplicationLockManager(table, lease_s=10.0)

        def main():
            a = yield from mgr.lock("k", "e1", 1, owner="a")
            ok_before = yield from mgr.verify("k", "a", a.fence)
            yield cloud.sim.sleep(11.0)
            b = yield from mgr.lock("k", "e2", 2, owner="b")
            ok_after = yield from mgr.verify("k", "a", a.fence)
            ok_thief = yield from mgr.verify("k", "b", b.fence)
            yield from mgr.unlock("k", owner="b")
            ok_gone = yield from mgr.verify("k", "b", b.fence)
            return ok_before, ok_after, ok_thief, ok_gone

        ok_before, ok_after, ok_thief, ok_gone = run(cloud, main())
        assert ok_before and ok_thief
        assert not ok_after and not ok_gone

    def test_release_reports_loss_and_spares_thief_record(self, cloud, table):
        mgr = ReplicationLockManager(table, lease_s=10.0)

        def main():
            yield from mgr.lock("k", "e1", 1, owner="a")
            yield cloud.sim.sleep(11.0)
            yield from mgr.lock("k", "e2", 2, owner="b")
            zombie = yield from mgr.release("k", owner="a")
            owner = yield from mgr.release("k", owner="b")
            return zombie, owner

        zombie, owner = run(cloud, main())
        assert not zombie.released
        assert owner.released
        assert not table.peek("lock:k")

    def test_lease_expiry_judged_at_admission_time(self, cloud, table):
        """Regression: expiry must be evaluated against the clock at KV
        *admission*, not at the call.  Under injected admission delay a
        steal attempt issued while the lease is young lands after it has
        lapsed; judging it with the stale pre-round-trip timestamp would
        wrongly deny the takeover (and, symmetrically, backdate the new
        holder's own lease)."""
        from repro.simcloud.chaos import ChaosConfig

        table.set_chaos(ChaosConfig(kv_delay_prob=0.95, kv_delay_mean_s=5.0),
                        cloud.rngs.stream("test-lock-delay"))
        mgr = ReplicationLockManager(table, lease_s=0.05)
        steals = []

        def main():
            for i in range(10):
                key = f"k{i}"
                yield from mgr.lock(key, "e1", 1, owner="a")
                # Issued immediately — well inside the lease at call time
                # — but admitted seconds later, far past it.
                outcome = yield from mgr.lock(key, "e2", 2, owner="b")
                steals.append(outcome.acquired)

        run(cloud, main())
        assert any(steals)
        for i, stolen in enumerate(steals):
            if stolen:
                assert table.peek(f"lock:k{i}")["owner"] == "b"
