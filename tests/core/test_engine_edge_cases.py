"""Edge-case tests for the replication engine's ordering, measurement,
and recovery plumbing."""

import pytest

from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob, ObjectEvent

MB = 1024 * 1024


def build(seed, slo=0.0, dst_key="aws:us-east-2", **cfg):
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(slo_seconds=slo, profile_samples=5, mc_samples=300,
                           **cfg)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket(dst_key, "dst")
    rule = svc.add_rule(src, dst)
    return cloud, svc, src, dst, rule


class TestOutOfOrderEvents:
    def test_stale_delete_event_cannot_clobber_newer_put(self):
        """A DELETE whose notification is delayed past a newer PUT's
        replication must not remove the newer object at the destination."""
        cloud, svc, src, dst, rule = build(seed=301)
        src.put_object("k", Blob.fresh(MB), cloud.now)
        cloud.run()
        # Hand-deliver a stale delete event (sequencer below current).
        current = src.head("k")
        stale = ObjectEvent("deleted", src.name, src.region, "k", MB,
                            "old-etag", current.sequencer - 1, cloud.now)
        rule.engine.handle_event(stale)
        cloud.run()
        assert dst.head("k").etag == current.etag

    def test_delete_superseded_by_later_recreation(self):
        """DELETE then PUT at the source; even if the delete's task runs
        after the put's, the destination ends with the object."""
        cloud, svc, src, dst, rule = build(seed=302)
        src.put_object("k", Blob.fresh(MB), cloud.now)
        cloud.run()
        src.delete_object("k", cloud.now)
        final = src.put_object("k", Blob.fresh(MB), cloud.now)
        cloud.run()
        assert dst.head("k").etag == final.etag
        assert svc.pending_count() == 0

    def test_late_notification_for_already_replicated_version(self):
        """An event whose version was already shipped (by a task that
        re-read the source) must still be measured — via the done
        marker's recorded time, not a bogus later timestamp."""
        cloud, svc, src, dst, rule = build(seed=303)
        src.put_object("k", Blob.fresh(MB), cloud.now)
        v2 = src.put_object("k", Blob.fresh(MB), cloud.now)
        cloud.run()
        assert dst.head("k").etag == v2.etag
        assert svc.pending_count() == 0
        for record in svc.records:
            assert record.delay >= 0
        assert rule.engine.stats["skipped_done"] + \
            rule.engine.stats["deferred"] >= 1


class TestForcedPlans:
    def test_forced_single_at_destination(self):
        cloud, svc, src, dst, rule = build(seed=304, dst_key="azure:eastus")
        rule.engine.forced_plan = (1, "azure:eastus")
        blob = Blob.fresh(64 * MB)
        src.put_object("k", blob, cloud.now)
        cloud.run()
        assert dst.head("k").etag == blob.etag
        [rec] = [r for r in svc.records if r.key == "k"]
        assert rec.plan_n == 1
        assert rec.loc_key == "azure:eastus"

    def test_forced_parallelism_capped_by_parts(self):
        cloud, svc, src, dst, rule = build(seed=305)
        rule.engine.forced_plan = (64, "aws:us-east-1")
        blob = Blob.fresh(16 * MB)  # only 2 parts
        src.put_object("k", blob, cloud.now)
        cloud.run()
        assert dst.head("k").etag == blob.etag
        workers = {w for (task, w) in rule.engine.worker_parts}
        assert len(workers) <= 2

    def test_forced_inline_for_small_objects(self):
        cloud, svc, src, dst, rule = build(seed=306)
        rule.engine.forced_plan = (1, "aws:us-east-1")
        src.put_object("k", Blob.fresh(MB), cloud.now)
        cloud.run()
        assert rule.engine.stats["inline"] == 1


class TestMeasurement:
    def test_replication_seconds_excludes_notification(self):
        cloud, svc, src, dst, rule = build(seed=307)
        src.put_object("k", Blob.fresh(8 * MB), cloud.now)
        cloud.run()
        [rec] = svc.records
        assert rec.replication_seconds < rec.delay
        assert rec.replication_seconds > 0

    def test_one_record_per_event_even_when_shared_task(self):
        """Three rapid versions satisfied by fewer tasks still produce
        exactly three measurement records."""
        cloud, svc, src, dst, rule = build(seed=308)
        for _ in range(3):
            src.put_object("k", Blob.fresh(MB), cloud.now)
        cloud.run()
        assert len([r for r in svc.records if r.key == "k"]) == 3

    def test_record_fields_populated(self):
        cloud, svc, src, dst, rule = build(seed=309)
        src.put_object("k", Blob.fresh(200 * MB), cloud.now)
        cloud.run()
        [rec] = svc.records
        assert rec.rule_id == rule.rule_id
        assert rec.kind == "created"
        assert rec.plan_n >= 1
        assert rec.loc_key in ("aws:us-east-1", "aws:us-east-2")
        assert rec.visible_time > rec.event_time

    def test_delays_filter_by_rule(self):
        cloud = build_default_cloud(seed=310)
        config = ReplicaConfig(profile_samples=5, mc_samples=300)
        svc = AReplicaService(cloud, config)
        src_a = cloud.bucket("aws:us-east-1", "a")
        src_b = cloud.bucket("aws:us-east-1", "b")
        dst = cloud.bucket("aws:us-east-2", "dst")
        rule_a = svc.add_rule(src_a, dst)
        rule_b = svc.add_rule(src_b, cloud.bucket("aws:us-east-2", "dst2"))
        src_a.put_object("x", Blob.fresh(MB), cloud.now)
        src_b.put_object("y", Blob.fresh(MB), cloud.now)
        src_b.put_object("z", Blob.fresh(MB), cloud.now)
        cloud.run()
        assert len(svc.delays(rule_a.rule_id)) == 1
        assert len(svc.delays(rule_b.rule_id)) == 2
        assert len(svc.delays()) == 3


class TestRecoveryPlumbing:
    def test_finalizer_crash_recovered(self):
        """Kill only finalization: parts complete, but the completing
        worker dies before recording — the janitor must finalize."""
        cloud, svc, src, dst, rule = build(seed=311, dst_key="azure:eastus")
        engine = rule.engine
        original = engine._try_finalize
        crashes = {"left": 1}

        def flaky_finalize(ctx, task):
            if crashes["left"] > 0:
                crashes["left"] -= 1
                raise RuntimeError("finalizer crash")
            return original(ctx, task)

        engine._try_finalize = lambda ctx, task: flaky_finalize(ctx, task)
        engine.recovery_grace_s = 2.0
        engine.finalize_lease_s = 5.0
        blob = Blob.fresh(256 * MB)
        src.put_object("k", blob, cloud.now)
        cloud.run()
        assert dst.head("k").etag == blob.etag
        assert svc.pending_count() == 0

    def test_stats_counters_consistent(self):
        cloud, svc, src, dst, rule = build(seed=312)
        for i in range(5):
            src.put_object(f"k{i}", Blob.fresh(MB), cloud.now)
        src.delete_object("k0", cloud.now)
        cloud.run()
        stats = rule.engine.stats
        assert stats["tasks"] >= 6
        assert stats["deletes"] >= 1
        assert stats["aborted"] == 0

    def test_worker_spans_cover_execution(self):
        cloud, svc, src, dst, rule = build(seed=313, dst_key="azure:eastus")
        src.put_object("big", Blob.fresh(512 * MB), cloud.now)
        cloud.run()
        for (task, worker), (start, end) in rule.engine.worker_spans.items():
            assert end >= start
