"""SLO autopilot: control-law properties, discipline oracle, wiring.

Three layers, matching the module's structure:

* ``KnobController`` in isolation — the AIMD core is service-free, so
  both the example-based tests and the Hypothesis stability suite can
  drive it with synthetic error sequences and prove the guarded-rollout
  properties directly: values never leave [lo, hi], nothing moves
  inside the hysteresis dead-band, cooldowns bound the actuation rate,
  and removing the disturbance converges every knob back to baseline;
* the ``TraceChecker`` autopilot-discipline invariants against
  synthetic traces — every new finding kind provably fires, and a
  clean trace provably passes;
* ``Autopilot`` wired into a live service — it engages on real SLO
  pressure, holds during administrative cordons, and its disabled /
  idle forms are byte-invisible (the golden guard lives in
  test_determinism_golden.py).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.autopilot import (AUTOPILOT_STAT_KEYS, Autopilot,
                                  KnobController, KnobSpec)
from repro.core.config import ReplicaConfig, TenantConfig
from repro.core.invariants import TraceChecker
from repro.core.service import AReplicaService
from repro.core.tracing import Tracer
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

pytestmark = pytest.mark.autopilot


class _Store:
    """A knob target that just remembers what was written to it."""

    def __init__(self, value):
        self.value = float(value)

    def write(self, value):
        self.value = float(value)


def make_knob(name="k", lo=1.0, hi=16.0, baseline=4.0, step=2.0, **kw):
    store = _Store(kw.pop("initial", baseline))
    spec = KnobSpec(name=name, lo=lo, hi=hi, baseline=baseline, step=step,
                    read=lambda: store.value, write=store.write, **kw)
    return store, spec


# ---------------------------------------------------------------------------
# KnobController: registry and validation
# ---------------------------------------------------------------------------

class TestKnobRegistry:
    def test_spec_validation(self):
        _, ok = make_knob()
        assert ok.baseline == 4.0
        with pytest.raises(ValueError):
            make_knob(baseline=99.0)          # outside [lo, hi]
        with pytest.raises(ValueError):
            make_knob(step=0.0)
        with pytest.raises(ValueError):
            make_knob(stress_direction=0)
        with pytest.raises(ValueError):
            make_knob(decay=0.0)

    def test_controller_validation(self):
        with pytest.raises(ValueError):
            KnobController(deadband=0.0)
        with pytest.raises(ValueError):
            KnobController(deadband=1.5)
        with pytest.raises(ValueError):
            KnobController(cooldown_s=-1.0)

    def test_duplicate_knob_raises(self):
        ctrl = KnobController(cooldown_s=0.0)
        _, spec = make_knob()
        ctrl.register(spec)
        with pytest.raises(ValueError):
            ctrl.register(spec)

    def test_stats_dict_covers_the_contract_keys(self):
        ctrl = KnobController()
        assert set(ctrl.stats) == set(AUTOPILOT_STAT_KEYS)


# ---------------------------------------------------------------------------
# KnobController: the control law
# ---------------------------------------------------------------------------

class TestControlLaw:
    def test_in_band_error_holds(self):
        ctrl = KnobController(deadband=0.15, cooldown_s=0.0)
        store, spec = make_knob()
        ctrl.register(spec)
        for err in (0.0, 0.15, -0.15, 0.1, -0.1):
            assert ctrl.drive("k", err, now=0.0) is None
        assert store.value == 4.0
        assert ctrl.stats["actuations"] == 0

    def test_cold_signal_and_unknown_knob_hold(self):
        ctrl = KnobController(cooldown_s=0.0)
        _, spec = make_knob()
        ctrl.register(spec)
        assert ctrl.drive("k", None, now=0.0) is None
        assert ctrl.drive("nope", 2.0, now=0.0) is None
        assert not ctrl.changelog

    def test_stress_steps_additively_and_clamps_at_hi(self):
        ctrl = KnobController(cooldown_s=0.0)
        store, spec = make_knob(lo=1.0, hi=7.0, baseline=4.0, step=2.0)
        ctrl.register(spec)
        act = ctrl.drive("k", 1.0, now=0.0)
        assert (act.old, act.new) == (4.0, 6.0) and store.value == 6.0
        act = ctrl.drive("k", 1.0, now=1.0)
        assert act.new == 7.0 and act.clamped       # 8 clamped to hi
        assert ctrl.stats["clamps"] == 1
        # Saturated at the guardrail: no actuation, but the clamp is
        # still the observable "wanted more authority" signal.
        assert ctrl.drive("k", 1.0, now=2.0) is None
        assert ctrl.stats["clamps"] == 2
        assert store.value == 7.0

    def test_negative_stress_direction_shrinks(self):
        ctrl = KnobController(cooldown_s=0.0)
        store, spec = make_knob(lo=0.0, hi=4.0, baseline=4.0, step=1.0,
                                stress_direction=-1)
        ctrl.register(spec)
        ctrl.drive("k", 1.0, now=0.0)
        assert store.value == 3.0

    def test_healthy_decays_to_baseline_and_snaps(self):
        ctrl = KnobController(cooldown_s=0.0)
        store, spec = make_knob(lo=1.0, hi=16.0, baseline=4.0, step=2.0)
        ctrl.register(spec)
        for t in range(4):
            ctrl.drive("k", 1.0, now=float(t))
        assert store.value == 12.0
        for t in range(4, 30):
            ctrl.drive("k", -1.0, now=float(t))
        assert store.value == 4.0               # exactly baseline (snap)
        # Fixed point: further healthy error is a no-op, not an orbit.
        assert ctrl.drive("k", -1.0, now=99.0) is None

    def test_integer_knob_moves_in_whole_steps(self):
        ctrl = KnobController(cooldown_s=0.0)
        store, spec = make_knob(lo=1.0, hi=32.0, baseline=4.0, step=2.0,
                                integer=True)
        ctrl.register(spec)
        ctrl.drive("k", 1.0, now=0.0)
        assert store.value == 6.0 and store.value == int(store.value)
        for t in range(1, 30):
            ctrl.drive("k", -1.0, now=float(t))
        assert store.value == 4.0

    def test_cooldown_skips_are_counted(self):
        ctrl = KnobController(cooldown_s=10.0)
        store, spec = make_knob()
        ctrl.register(spec)
        assert ctrl.drive("k", 1.0, now=0.0) is not None
        assert ctrl.drive("k", 1.0, now=5.0) is None     # inside cooldown
        assert ctrl.stats["cooldown_skips"] == 1
        assert ctrl.drive("k", 1.0, now=10.0) is not None
        assert ctrl.stats["actuations"] == 2

    def test_actuation_emits_zero_width_span_with_guardrails(self):
        class _Sim:
            now = 0.0
        tracer = Tracer(_Sim())
        ctrl = KnobController(cooldown_s=7.5, tracer=tracer)
        _, spec = make_knob(lo=1.0, hi=16.0, baseline=4.0, step=2.0)
        ctrl.register(spec)
        ctrl.drive("k", 0.5, now=3.0, reason="slo")
        (span,) = tracer.spans
        assert span.cat == "autopilot" and span.start == span.end == 3.0
        assert span.attrs["knob"] == "k"
        assert (span.attrs["old"], span.attrs["new"]) == (4.0, 6.0)
        assert (span.attrs["lo"], span.attrs["hi"]) == (1.0, 16.0)
        assert span.attrs["cooldown_s"] == 7.5
        assert span.attrs["reason"] == "slo"

    def test_hold_emits_no_span(self):
        class _Sim:
            now = 0.0
        tracer = Tracer(_Sim())
        ctrl = KnobController(cooldown_s=0.0, tracer=tracer)
        ctrl.register(make_knob()[1])
        ctrl.drive("k", 0.05, now=0.0)
        assert not tracer.spans and not tracer.events


# ---------------------------------------------------------------------------
# Hypothesis: stability properties over random load mixes
# ---------------------------------------------------------------------------

_ERRORS = st.lists(
    st.one_of(st.none(),
              st.floats(min_value=-5.0, max_value=5.0,
                        allow_nan=False, allow_infinity=False)),
    min_size=1, max_size=60)


class TestControllerStability:
    @settings(max_examples=60, deadline=None)
    @given(errors=_ERRORS)
    def test_value_never_leaves_declared_bounds(self, errors):
        ctrl = KnobController(deadband=0.15, cooldown_s=0.0)
        store, spec = make_knob(lo=1.0, hi=10.0, baseline=4.0, step=3.0)
        ctrl.register(spec)
        for t, err in enumerate(errors):
            ctrl.drive("k", err, now=float(t))
            assert spec.lo <= store.value <= spec.hi
        for act in ctrl.changelog:
            assert spec.lo <= act.new <= spec.hi

    @settings(max_examples=60, deadline=None)
    @given(errors=st.lists(
        st.floats(min_value=-0.15, max_value=0.15,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=60))
    def test_never_oscillates_inside_the_hysteresis_band(self, errors):
        """Errors within ±deadband must produce zero actuations — the
        dead-band is what stops the controller hunting around a
        satisfied SLO."""
        ctrl = KnobController(deadband=0.15, cooldown_s=0.0)
        store, spec = make_knob()
        ctrl.register(spec)
        for t, err in enumerate(errors):
            ctrl.drive("k", err, now=float(t))
        assert not ctrl.changelog and store.value == spec.baseline

    @settings(max_examples=60, deadline=None)
    @given(errors=_ERRORS,
           direction=st.sampled_from([1, -1]),
           integer=st.booleans())
    def test_converges_to_baseline_when_disturbance_removed(
            self, errors, direction, integer):
        """After any disturbance history, sustained healthy error drives
        the knob exactly back to its configured baseline — a fixed
        point, not an orbit."""
        ctrl = KnobController(deadband=0.15, cooldown_s=0.0)
        store, spec = make_knob(lo=1.0, hi=10.0, baseline=4.0, step=3.0,
                                stress_direction=direction, integer=integer)
        ctrl.register(spec)
        for t, err in enumerate(errors):
            ctrl.drive("k", err, now=float(t))
        for t in range(len(errors), len(errors) + 40):
            ctrl.drive("k", -1.0, now=float(t))
        assert store.value == spec.baseline
        assert ctrl.drive("k", -1.0, now=1e6) is None

    @settings(max_examples=60, deadline=None)
    @given(errors=_ERRORS,
           gaps=st.lists(st.floats(min_value=0.1, max_value=30.0,
                                   allow_nan=False),
                         min_size=60, max_size=60))
    def test_cooldown_bounds_the_actuation_rate(self, errors, gaps):
        ctrl = KnobController(deadband=0.15, cooldown_s=12.0)
        _, spec = make_knob(lo=1.0, hi=10.0, baseline=4.0, step=3.0)
        ctrl.register(spec)
        now = 0.0
        for err, gap in zip(errors, gaps):
            now += gap
            ctrl.drive("k", err, now=now)
        times = [a.time for a in ctrl.changelog]
        assert all(b - a >= 12.0 for a, b in zip(times, times[1:]))


# ---------------------------------------------------------------------------
# TraceChecker autopilot-discipline invariants (synthetic traces)
# ---------------------------------------------------------------------------

class _FakeSim:
    def __init__(self):
        self.now = 0.0


class _Svc:
    def __init__(self, tracer):
        self.tracer = tracer
        self.rules = {}


def _bare():
    tr = Tracer(_FakeSim())
    return tr, _Svc(tr)


def _actuate(tr, t, knob="k", old=2.0, new=3.0, lo=1.0, hi=4.0,
             cooldown=10.0):
    tr.span("actuate", "autopilot", None, t, t, knob=knob, old=old,
            new=new, lo=lo, hi=hi, cooldown_s=cooldown, error=1.0,
            clamped=False, reason="slo")


def _cordon(tr, t, region="aws:us-east-1", substrate="faas"):
    tr.sim.now = t
    tr.event("cordon", "lifecycle", None, substrate=substrate,
             region=region)


def _uncordon(tr, t, region="aws:us-east-1", substrate="faas"):
    tr.sim.now = t
    tr.event("uncordon", "lifecycle", None, substrate=substrate,
             region=region)


def _kinds(report):
    return {f.kind for f in report.findings}


class TestAutopilotDisciplineOracle:
    def test_clean_actuations_pass_and_are_counted(self):
        tr, svc = _bare()
        _actuate(tr, 0.0, old=2.0, new=3.0)
        _actuate(tr, 10.0, old=3.0, new=4.0)
        report = TraceChecker(svc).check()
        assert report.clean
        assert report.checked["autopilot_actuations"] == 2

    def test_value_outside_declared_bounds_is_flagged(self):
        tr, svc = _bare()
        _actuate(tr, 0.0, old=2.0, new=9.0, lo=1.0, hi=4.0)
        assert "autopilot-bounds" in _kinds(TraceChecker(svc).check())

    def test_cooldown_violation_is_flagged(self):
        tr, svc = _bare()
        _actuate(tr, 0.0, cooldown=10.0)
        _actuate(tr, 4.0, old=3.0, new=4.0, cooldown=10.0)
        assert "autopilot-cooldown" in _kinds(TraceChecker(svc).check())

    def test_cooldown_applies_per_knob_not_globally(self):
        tr, svc = _bare()
        _actuate(tr, 0.0, knob="a")
        _actuate(tr, 1.0, knob="b")     # different knob: legal
        assert TraceChecker(svc).check().clean

    def test_actuation_inside_cordon_window_is_flagged(self):
        tr, svc = _bare()
        _cordon(tr, 5.0)
        _uncordon(tr, 15.0)
        _actuate(tr, 10.0)
        assert "autopilot-cordon" in _kinds(TraceChecker(svc).check())

    def test_actuation_at_cordon_edges_is_legal(self):
        tr, svc = _bare()
        _cordon(tr, 5.0)
        _uncordon(tr, 15.0)
        _actuate(tr, 5.0)
        _actuate(tr, 15.0, old=3.0, new=4.0)
        assert TraceChecker(svc).check().clean

    def test_cordon_hold_covers_every_substrate(self):
        """The autopilot must hold during *any* planned operation, not
        just FaaS cordons — a KV cordon window traps it too."""
        tr, svc = _bare()
        _cordon(tr, 5.0, substrate="kv")
        _uncordon(tr, 15.0, substrate="kv")
        _actuate(tr, 10.0)
        assert "autopilot-cordon" in _kinds(TraceChecker(svc).check())


# ---------------------------------------------------------------------------
# Autopilot wired into a live service
# ---------------------------------------------------------------------------

def _live_service(autopilot=True, **cfg_kw):
    cloud = build_default_cloud(seed=0)
    config = ReplicaConfig(profile_samples=4, mc_samples=300,
                           tracing_enabled=True,
                           enable_autopilot=autopilot,
                           autopilot_interval_s=10.0,
                           autopilot_window_s=120.0,
                           autopilot_cooldown_s=0.0,
                           **cfg_kw)
    svc = AReplicaService(cloud, config)
    svc.enable_multitenancy(shards=1, max_concurrent=2)
    src = cloud.bucket("aws:us-east-1", "probe-src")
    dst = cloud.bucket("azure:eastus", "probe-dst")
    svc.profiler.ensure_path("aws:us-east-1", src, dst)
    svc.profiler.ensure_path("azure:eastus", src, dst)
    return cloud, svc


def _add_tenant(cloud, svc, tid="t0", slo=0.5):
    src = cloud.bucket("aws:us-east-1", f"{tid}-src")
    dst = cloud.bucket("azure:eastus", f"{tid}-dst")
    tc = TenantConfig(tenant_id=tid, buckets=(src.name, dst.name),
                      slo_target_s=slo)
    return svc.add_tenant(tc, src, dst)


class TestAutopilotService:
    def test_disabled_config_constructs_nothing(self):
        cloud = build_default_cloud(seed=0)
        svc = AReplicaService(cloud, ReplicaConfig(profile_samples=4))
        assert svc.autopilot is None

    def test_engages_on_slo_pressure_and_trace_stays_clean(self):
        """An impossible SLO (0.5 s cross-cloud) turns every completion
        into pressure: the controller must actuate, every actuation must
        be a traced autopilot span, and the discipline oracle must hold
        over the real run."""
        cloud, svc = _live_service()
        state = _add_tenant(cloud, svc, slo=0.5)
        base = cloud.sim.now
        for i in range(12):
            cloud.sim.call_at(base + 1.0 + 4.0 * i,
                              lambda i=i, b=state.src_bucket: b.put_object(
                                  f"k{i}", Blob.fresh(64 * 1024),
                                  cloud.sim.now))
        svc.autopilot.start(120.0)
        cloud.run()
        ap = svc.autopilot
        assert ap.stats["actuations"] > 0
        spans = [s for s in svc.tracer.spans if s.cat == "autopilot"]
        assert len(spans) == ap.stats["actuations"] == \
            len(ap.controller.changelog)
        report = TraceChecker(svc).check()
        assert report.clean, [str(f) for f in report.findings]
        assert report.checked["autopilot_actuations"] == len(spans)
        # The episode opened (pressure) — it may or may not settle
        # within this short run, but it must exist, and every *closed*
        # episode must have contributed one settle-time sample.
        assert ap.episodes
        closed = [e for e in ap.episodes if e[1] is not None]
        assert len(ap.stats["settle_time_s"]) == len(closed)
        assert all(s >= 0 for s in ap.stats["settle_time_s"])

    def test_holds_while_cordoned(self):
        """An open administrative cordon freezes the controller: ticks
        count cordon holds, no knob moves, no span is emitted."""
        cloud, svc = _live_service()
        state = _add_tenant(cloud, svc, slo=0.5)
        base = cloud.sim.now
        for i in range(6):
            cloud.sim.call_at(base + 1.0 + 4.0 * i,
                              lambda i=i, b=state.src_bucket: b.put_object(
                                  f"k{i}", Blob.fresh(64 * 1024),
                                  cloud.sim.now))
        svc.health.cordon(("faas", "azure:eastus"))
        svc.autopilot.start(100.0)
        cloud.run()
        ap = svc.autopilot
        assert ap.stats["cordon_holds"] > 0
        assert ap.stats["actuations"] == 0
        assert not [s for s in svc.tracer.spans if s.cat == "autopilot"]
        assert TraceChecker(svc).check().clean

    def test_start_is_bounded_and_restartable(self):
        cloud, svc = _live_service()
        _add_tenant(cloud, svc)
        svc.autopilot.start(50.0)
        with pytest.raises(RuntimeError):
            svc.autopilot.start(50.0)
        cloud.run()
        assert cloud.sim.now >= 50.0
        svc.autopilot.start(25.0)     # bounded loop ended; restart legal
        cloud.run()

    def test_snapshot_is_json_friendly(self):
        import json
        cloud, svc = _live_service()
        _add_tenant(cloud, svc)
        svc.autopilot.start(30.0)
        cloud.run()
        snap = svc.autopilot.snapshot()
        json.dumps(snap)
        assert set(snap["stats"]) == set(AUTOPILOT_STAT_KEYS)
        assert "dispatch_concurrency" in snap["knobs"]

    def test_dispatch_concurrency_actuation_reaches_the_scheduler(self):
        cloud, svc = _live_service()
        _add_tenant(cloud, svc)
        svc.autopilot.start(10.0)
        ctrl = svc.autopilot.controller
        before = svc.scheduler.max_concurrent
        act = ctrl.drive("dispatch_concurrency", 1.0,
                         now=cloud.sim.now, reason="test")
        assert act is not None
        assert svc.scheduler.max_concurrent > before

    def test_config_knob_actuation_swaps_engine_configs(self):
        cloud, svc = _live_service()
        _add_tenant(cloud, svc)
        # Shard engines are lazy: force one into existence.
        state = svc.tenants["t0"]
        state.src_bucket.put_object("warm", Blob.fresh(1024), cloud.sim.now)
        cloud.run()
        svc.autopilot.start(10.0)
        ctrl = svc.autopilot.controller
        act = ctrl.drive("batching_epsilon", 1.0, now=cloud.sim.now,
                         reason="test")
        assert act is not None
        for rule in svc.rules.values():
            assert rule.engine.config.batching_epsilon == act.new

    def test_retry_deadline_actuation_swaps_retry_policies(self):
        cloud, svc = _live_service()
        _add_tenant(cloud, svc)
        state = svc.tenants["t0"]
        state.src_bucket.put_object("warm", Blob.fresh(1024), cloud.sim.now)
        cloud.run()
        svc.autopilot.start(10.0)
        ctrl = svc.autopilot.controller
        act = ctrl.drive("retry_deadline_s", 1.0, now=cloud.sim.now,
                         reason="test")
        assert act is not None and act.new < act.old
        for rule in svc.rules.values():
            assert rule.engine.retry_policy.deadline_s == act.new
