"""Property suite for the weighted fair-share (DRR) scheduler.

The three guarantees the multi-tenant control plane leans on:

* **liveness / no starvation** — every submitted task is eventually
  dispatched, for *any* adversarial order in which in-flight work
  settles (hypothesis drives the settle order);
* **weighted shares** — under sustained contention the long-run
  dispatch shares converge to the configured DRR weights;
* **budget honesty** — a charge stream that follows the admission rule
  (charge only while ``window_spent < budget``) never produces an
  over-admission, so budget-exhausted tenants cannot have dispatched.

The scheduler is exercised against a fake simulator: ``spawn`` just
collects the slot-watcher generators, and the test *is* the event
loop — it advances a watcher to its ``yield`` (the invocation future)
and then sends the settle, which releases the slot and re-pumps.  That
keeps every interleaving deterministic and lets hypothesis pick truly
hostile completion orders without running a DES.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import FairShareScheduler
from repro.simcloud.cost import TenantLedger

pytestmark = pytest.mark.tenant


class FakeSim:
    """Collects watcher processes; the test drives them by hand."""

    def __init__(self):
        self.watchers = []

    def spawn(self, gen, name=None):
        self.watchers.append(gen)
        return gen


class Harness:
    """A scheduler plus hand-cranked dispatch/settle machinery."""

    def __init__(self, max_concurrent: int, quantum: float = 1.0):
        self.sim = FakeSim()
        self.sched = FairShareScheduler(
            self.sim, max_concurrent=max_concurrent, quantum=quantum)
        self.order: list[str] = []  # tenant ids in dispatch order

    def submit(self, tid: str, n: int = 1) -> None:
        for _ in range(n):
            self.sched.submit(tid, lambda t=tid: self._dispatch(t))

    def _dispatch(self, tid: str) -> object:
        self.order.append(tid)
        return object()  # opaque invocation future

    def settle(self, index: int = 0) -> None:
        """Complete the ``index``-th outstanding watcher."""
        gen = self.sim.watchers.pop(index)
        next(gen)  # run to `yield invocation`
        try:
            gen.send(None)  # invocation settled: release slot, re-pump
        except StopIteration:
            pass

    def drain(self, choose=None) -> None:
        """Settle everything; ``choose(n)`` picks which watcher next."""
        while self.sim.watchers:
            index = choose(len(self.sim.watchers)) if choose else 0
            self.settle(index)


# -- liveness: no tenant with pending work starves ----------------------------

@settings(max_examples=60, deadline=None)
@given(
    backlogs=st.lists(st.integers(min_value=0, max_value=12),
                      min_size=1, max_size=6),
    weights=st.lists(st.floats(min_value=0.1, max_value=8.0,
                               allow_nan=False, allow_infinity=False),
                     min_size=6, max_size=6),
    max_concurrent=st.integers(min_value=1, max_value=4),
    settle_picks=st.lists(st.integers(min_value=0, max_value=10 ** 6),
                          max_size=200),
)
def test_every_submitted_task_eventually_dispatches(
        backlogs, weights, max_concurrent, settle_picks):
    """Liveness under adversarial settle orders: whatever order the
    in-flight invocations complete in, every queued task dispatches and
    the queues end empty."""
    h = Harness(max_concurrent=max_concurrent)
    for i, (n, w) in enumerate(zip(backlogs, weights)):
        tid = f"t{i}"
        h.sched.add_tenant(tid, weight=w)
        h.submit(tid, n)
    picks = iter(settle_picks)

    def choose(n):
        return next(picks, 0) % n

    h.drain(choose=choose)
    assert h.sched.pending() == 0
    assert h.sched.in_flight == 0
    for i, n in enumerate(backlogs):
        assert h.sched.dispatched(f"t{i}") == n, f"t{i} starved"
    assert h.sched.total_dispatched == sum(backlogs)


def test_late_arrival_is_served_within_one_round():
    """A tenant that shows up while two others hog the ring still gets
    its first dispatch after at most one full DRR round (the classic
    bounded-wait guarantee)."""
    h = Harness(max_concurrent=1)
    h.sched.add_tenant("busy-a", weight=1.0)
    h.sched.add_tenant("busy-b", weight=1.0)
    h.sched.add_tenant("late", weight=1.0)
    h.submit("busy-a", 50)
    h.submit("busy-b", 50)
    h.submit("late", 1)
    # Settle until "late" dispatches; it must not take more than one
    # visit to each backlogged lane (weight 1, quantum 1 → one task
    # per lane per round) plus the task already in flight.
    for _ in range(4):
        if "late" in h.order:
            break
        h.settle()
    assert "late" in h.order[:4]


# -- weighted shares converge under contention --------------------------------

@pytest.mark.parametrize("weights", [
    {"small": 1.0, "mid": 2.0, "big": 4.0},
    {"a": 1.0, "b": 1.0, "c": 1.0},
    {"x": 0.5, "y": 3.0},
])
def test_longrun_dispatch_shares_converge_to_weights(weights):
    """With every lane permanently backlogged and one concurrency slot,
    the dispatch share of each tenant over a long horizon lands within
    5 percentage points of its weight share."""
    h = Harness(max_concurrent=1)
    rounds = 700
    for tid, w in weights.items():
        h.sched.add_tenant(tid, weight=w)
        h.submit(tid, rounds)  # deep enough to never drain
    observed = 0
    while h.sim.watchers and observed < rounds:
        h.settle()
        observed = len(h.order)
    total_weight = sum(weights.values())
    counts = {tid: h.order[:rounds].count(tid) for tid in weights}
    for tid, w in weights.items():
        share = counts[tid] / rounds
        expected = w / total_weight
        assert abs(share - expected) <= 0.05, (
            f"{tid}: share {share:.3f} vs weight share {expected:.3f}")


@settings(max_examples=40, deadline=None)
@given(weights=st.lists(st.floats(min_value=0.25, max_value=4.0,
                                  allow_nan=False, allow_infinity=False),
                        min_size=2, max_size=5))
def test_shares_converge_for_random_weight_mixes(weights):
    """Same convergence property, hypothesis-chosen weight vectors.
    The DRR error bound is one max-packet per round per lane, so the
    tolerance scales with the number of lanes over the horizon."""
    h = Harness(max_concurrent=1)
    horizon = 600
    for i, w in enumerate(weights):
        h.sched.add_tenant(f"t{i}", weight=w)
        h.submit(f"t{i}", horizon)
    while h.sim.watchers and len(h.order) < horizon:
        h.settle()
    total_weight = sum(weights)
    tolerance = 0.05 + len(weights) * math.ceil(max(weights)) / horizon
    for i, w in enumerate(weights):
        share = h.order[:horizon].count(f"t{i}") / horizon
        assert abs(share - w / total_weight) <= tolerance


def test_empty_lane_forfeits_deficit():
    """An idle tenant must not bank credit while away (DRR rule): after
    its lane drains and others run for a while, its next burst gets no
    catch-up beyond the normal per-round quantum."""
    h = Harness(max_concurrent=1)
    h.sched.add_tenant("idler", weight=4.0)
    h.sched.add_tenant("worker", weight=1.0)
    h.submit("idler", 1)
    h.drain()
    h.submit("worker", 100)
    for _ in range(50):
        h.settle()
    h.submit("idler", 100)
    for _ in range(12):
        h.settle()
    # After re-joining, the idler's longest consecutive service run is
    # one round's credit (quantum × weight = 4) — not the ~200 tasks
    # that 50 rounds of banked credit would buy.
    tail = h.order[51:]
    longest = run = 0
    for tid in tail:
        run = run + 1 if tid == "idler" else 0
        longest = max(longest, run)
    assert 1 <= longest <= 4, f"idler banked credit while idle: {tail}"


def test_slot_held_until_invocation_settles():
    """Concurrency accounting: a dispatched task occupies a slot until
    its watcher sees the invocation settle; a ``None`` result (fire and
    forget) releases the slot synchronously."""
    h = Harness(max_concurrent=2)
    h.sched.add_tenant("t", weight=1.0)
    h.submit("t", 3)
    assert h.sched.in_flight == 2 and h.sched.pending("t") == 1
    h.settle()
    assert h.sched.in_flight == 2 and h.sched.pending("t") == 0
    h.drain()
    assert h.sched.in_flight == 0

    none_sched = FairShareScheduler(FakeSim(), max_concurrent=1)
    none_sched.add_tenant("t")
    none_sched.submit("t", lambda: None)
    assert none_sched.in_flight == 0 and none_sched.total_dispatched == 1


def test_fairshare_waits_counter_lands_in_tenant_stats():
    """Submissions that cannot dispatch synchronously bump the bound
    tenant-stats dict (the service's per-tenant counters)."""
    h = Harness(max_concurrent=1)
    stats = {"fairshare_waits": 0}
    h.sched.add_tenant("t", weight=1.0, stats=stats)
    h.submit("t", 3)
    assert stats["fairshare_waits"] == 2
    assert h.sched.total_waits == 2


def test_scheduler_rejects_bad_parameters():
    with pytest.raises(ValueError):
        FairShareScheduler(FakeSim(), max_concurrent=0)
    with pytest.raises(ValueError):
        FairShareScheduler(FakeSim(), quantum=0.0)
    with pytest.raises(ValueError):
        FairShareScheduler(FakeSim()).add_tenant("t", weight=0.0)


# -- budget honesty: exhausted tenants never dispatch -------------------------

@settings(max_examples=80, deadline=None)
@given(
    budget=st.floats(min_value=0.5, max_value=20.0,
                     allow_nan=False, allow_infinity=False),
    window_s=st.floats(min_value=1.0, max_value=600.0,
                       allow_nan=False, allow_infinity=False),
    steps=st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=50.0,
                            allow_nan=False, allow_infinity=False),
                  st.floats(min_value=0.01, max_value=5.0,
                            allow_nan=False, allow_infinity=False)),
        max_size=120),
)
def test_admission_rule_never_over_admits(budget, window_s, steps):
    """Replaying any arrival stream through the service's admission
    rule — charge iff the synced window spend is strictly below the
    budget — yields a ledger whose self-audit finds zero entries charged
    into an exhausted window.  This is the 'budget-exhausted tenants
    never dispatch' property: dispatch is gated on exactly this charge."""
    ledger = TenantLedger("t", budget_usd=budget, window_s=window_s)
    now = 0.0
    dispatched_when_exhausted = 0
    for dt, amount in steps:
        now += dt
        ledger.sync(now)
        if ledger.exhausted:
            dispatched_when_exhausted += 0  # admission refuses: no charge
            continue
        ledger.charge(now, amount)
    assert ledger.over_admissions() == 0
    assert dispatched_when_exhausted == 0


def test_over_admission_audit_actually_detects_violations():
    """Sanity: the self-audit is not vacuous — charging past exhaustion
    (what a buggy controller would do) is flagged."""
    ledger = TenantLedger("t", budget_usd=1.0, window_s=60.0)
    ledger.charge(0.0, 1.0)
    assert ledger.exhausted
    ledger.charge(1.0, 0.5)  # a correct controller would have refused
    assert ledger.over_admissions() == 1


def test_unlimited_budget_never_exhausts():
    ledger = TenantLedger("t", budget_usd=None, window_s=60.0)
    for i in range(50):
        ledger.charge(float(i), 10.0)
    assert not ledger.exhausted
    assert ledger.over_admissions() == 0
    assert ledger.lifetime_spent == pytest.approx(500.0)


def test_window_roll_resets_window_spend_but_not_lifetime():
    ledger = TenantLedger("t", budget_usd=2.0, window_s=10.0)
    ledger.charge(0.0, 2.0)
    assert ledger.exhausted
    ledger.sync(10.0)
    assert not ledger.exhausted and ledger.window_index == 1
    assert ledger.window_spent == 0.0
    assert ledger.lifetime_spent == pytest.approx(2.0)
