"""Contract test: the engine's stats counters are a closed, tested set.

``ReplicationEngine.stats`` is the observable surface most tests (and
the CLI's chaos/outage reports) assert against.  This contract keeps it
honest in both directions:

* a counter added to the engine without updating the documented set
  below fails ``test_engine_stats_keys_are_the_documented_set``;
* a documented counter that no test ever references fails
  ``test_every_stats_counter_is_exercised_by_some_test`` — every key
  must be asserted somewhere in the suite.

The multi-tenant control plane has its own counter surface — the
per-tenant operational stats (``TENANT_STAT_KEYS`` in
``core/service.py``, mutated by the service's admission router and the
fair-share scheduler) — held to the same two-directional contract.
"""

import re
from pathlib import Path

import repro.core.autopilot as autopilot_mod
import repro.core.engine as engine_mod
import repro.core.lifecycle as lifecycle_mod
import repro.core.scheduler as scheduler_mod
import repro.core.service as service_mod

#: Both modules that mutate ``ReplicationEngine.stats``: the engine
#: itself and the planned-operations lifecycle layer.
STATS_SOURCES = (Path(engine_mod.__file__), Path(lifecycle_mod.__file__))
TESTS_DIR = Path(__file__).resolve().parents[1]

#: Every counter the engine maintains, whether eagerly initialised or
#: created on first use via ``stats.get``/setdefault-style access.
EXPECTED_KEYS = frozenset({
    "tasks", "inline", "single", "distributed",
    "changelog_applied", "changelog_fallback",
    "aborted", "deferred", "skipped_done", "deletes", "retriggered",
    "lock_lost", "orphaned_uploads",
    "kv_retries", "kv_retry_exhausted", "kv_retry_deadline",
    "parked", "drained", "probes", "failover", "backlog_kv_failed",
    "content_skipped", "quota_clamped",
    "recovered_parts", "recovered_finalize",
    "corrupt_detected", "retransfers", "quarantined",
    "finalize_verify_failed",
    "hedges", "hedge_wins", "hedge_losses", "hedge_cancelled",
    "cordons", "drained_parts", "migrated_tasks", "checkpoints",
    "switchovers",
})

_KEY_RE = re.compile(r"""stats(?:\.get\(|\[)\s*["']([a-z_]+)["']""")


def _keys_in_engine_source():
    return frozenset(key for src in STATS_SOURCES
                     for key in _KEY_RE.findall(src.read_text()))


def test_engine_stats_keys_are_the_documented_set():
    assert _keys_in_engine_source() == EXPECTED_KEYS


def test_every_stats_counter_is_exercised_by_some_test():
    me = Path(__file__).resolve()
    corpus = "\n".join(
        p.read_text() for p in sorted(TESTS_DIR.rglob("test_*.py"))
        if p.resolve() != me)
    missing = [k for k in sorted(EXPECTED_KEYS)
               if f'"{k}"' not in corpus and f"'{k}'" not in corpus]
    assert not missing, f"stats counters no test references: {missing}"


# -- per-tenant counters (TENANT_STAT_KEYS) -----------------------------------

#: The modules that mutate per-tenant stats dicts: the service's
#: admission/routing layer and the fair-share scheduler.
TENANT_STATS_SOURCES = (Path(service_mod.__file__),
                        Path(scheduler_mod.__file__))

EXPECTED_TENANT_KEYS = frozenset({
    "admitted", "deferred", "rejected", "fairshare_waits",
    "shard_migrations",
})


def test_tenant_stat_keys_match_the_documented_set():
    """The module constant is the single source of truth the service
    initialises tenant counters from; keep this contract's copy and the
    code agreeing."""
    assert frozenset(service_mod.TENANT_STAT_KEYS) == EXPECTED_TENANT_KEYS


def test_tenant_sources_touch_only_documented_keys():
    """Every ``stats[...]``/``stats.get(...)`` access in the tenant
    layers names either a documented tenant counter or a documented
    engine counter (the service also reads engine stats when it
    aggregates summaries) — no untracked counter surface."""
    scraped = frozenset(key for src in TENANT_STATS_SOURCES
                        for key in _KEY_RE.findall(src.read_text()))
    undocumented = scraped - EXPECTED_TENANT_KEYS - EXPECTED_KEYS
    assert not undocumented, f"untracked stats keys: {sorted(undocumented)}"
    # And every tenant counter is genuinely mutated in the sources.
    assert EXPECTED_TENANT_KEYS <= scraped


def test_every_tenant_counter_is_exercised_by_some_test():
    me = Path(__file__).resolve()
    corpus = "\n".join(
        p.read_text() for p in sorted(TESTS_DIR.rglob("test_*.py"))
        if p.resolve() != me)
    missing = [k for k in sorted(EXPECTED_TENANT_KEYS)
               if f'"{k}"' not in corpus and f"'{k}'" not in corpus]
    assert not missing, f"tenant counters no test references: {missing}"


# -- autopilot counters (AUTOPILOT_STAT_KEYS) ---------------------------------

#: The only module that mutates the autopilot's operational counters:
#: the controller itself (the service just holds a reference).
AUTOPILOT_STATS_SOURCES = (Path(autopilot_mod.__file__),)

EXPECTED_AUTOPILOT_KEYS = frozenset({
    "actuations", "clamps", "cooldown_skips", "cordon_holds",
    "settle_time_s",
})


def test_autopilot_stat_keys_match_the_documented_set():
    """``AUTOPILOT_STAT_KEYS`` is the single source of truth both the
    controller and the autopilot initialise their stats dicts from;
    keep this contract's copy and the code agreeing."""
    assert frozenset(autopilot_mod.AUTOPILOT_STAT_KEYS) == \
        EXPECTED_AUTOPILOT_KEYS


def test_autopilot_source_touches_only_documented_keys():
    """Every ``stats[...]``/``stats.get(...)`` access in the autopilot
    names a documented counter — no untracked counter surface — and
    every documented counter is genuinely mutated there."""
    scraped = frozenset(key for src in AUTOPILOT_STATS_SOURCES
                        for key in _KEY_RE.findall(src.read_text()))
    undocumented = scraped - EXPECTED_AUTOPILOT_KEYS
    assert not undocumented, f"untracked stats keys: {sorted(undocumented)}"
    assert EXPECTED_AUTOPILOT_KEYS <= scraped


def test_every_autopilot_counter_is_exercised_by_some_test():
    me = Path(__file__).resolve()
    corpus = "\n".join(
        p.read_text() for p in sorted(TESTS_DIR.rglob("test_*.py"))
        if p.resolve() != me)
    missing = [k for k in sorted(EXPECTED_AUTOPILOT_KEYS)
               if f'"{k}"' not in corpus and f"'{k}'" not in corpus]
    assert not missing, f"autopilot counters no test references: {missing}"
