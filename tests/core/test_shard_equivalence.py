"""Shard-count equivalence: outcomes are placement-independent.

Sharding the key-space across engine workers changes *interleaving* —
which lock domain a key lives in, which engine's stats tick, the order
invocations hit the platform — but must never change *outcomes*: the
same seeded workload run on 1 shard and on 4 shards has to end with
identical destination objects, identical done markers, and identical
tenant-ledger spend (admission happens at the tenant front door, before
the shard router, and the cost estimate is a pure function of the
event — so not even the reservation stream may differ).

The two runs share one process, so blob content ids are re-seeded the
way the determinism-golden suite does it: resetting the process-global
fresh counter lets both runs mint identical payloads and therefore
identical etags.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.config import ReplicaConfig, TenantConfig
from repro.core.service import AReplicaService
from repro.simcloud import objectstore
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

pytestmark = pytest.mark.tenant

KB = 1024
TENANTS = ("red", "green", "blue")


def run_workload(seed: int, shards: int):
    """One seeded 3-tenant workload; returns an outcome fingerprint."""
    objectstore._fresh_counter = itertools.count()
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(profile_samples=4, mc_samples=300)
    svc = AReplicaService(cloud, config)
    svc.enable_multitenancy(shards=shards, max_concurrent=8)
    probe_src = cloud.bucket("aws:us-east-1", "profile-probe-src")
    probe_dst = cloud.bucket("azure:eastus", "profile-probe-dst")
    svc.profiler.ensure_path("aws:us-east-1", probe_src, probe_dst)
    buckets = {}
    for tid in TENANTS:
        src = cloud.bucket("aws:us-east-1", f"{tid}-src")
        dst = cloud.bucket("azure:eastus", f"{tid}-dst")
        svc.add_tenant(TenantConfig(tid), src, dst)
        buckets[tid] = (src, dst)

    # Deterministic skewed workload: overwrites and deletes included,
    # schedule computed up front so both runs issue identical puts.
    rng = cloud.rngs.stream("shard-equivalence-workload")
    base = cloud.sim.now
    t = 1.0
    for _ in range(30):
        t += float(rng.exponential(1.5))
        tid = TENANTS[int(rng.integers(len(TENANTS)))]
        key = f"k{int(rng.integers(8))}"
        src = buckets[tid][0]
        if rng.random() < 0.15:
            cloud.sim.call_at(base + t, lambda s=src, k=key: (
                k in s and s.delete_object(k, cloud.sim.now)))
        else:
            size = int(rng.integers(1, 48)) * KB
            cloud.sim.call_at(base + t, lambda s=src, k=key, z=size:
                              s.put_object(k, Blob.fresh(z), cloud.sim.now))
    cloud.run()
    report = svc.run_to_convergence()
    assert report.converged, f"seed {seed} shards {shards}: {report.render()}"

    fingerprint = {}
    for tid in TENANTS:
        src, dst = buckets[tid]
        state = svc.tenants[tid]
        markers = {}
        for rule in svc.tenant_rules(tid):
            table = rule.engine._lock_table
            for item_key, item in table._items.items():
                if item_key.startswith("done:"):
                    # Drop the completion timestamp: interleaving moves
                    # it; etag/seq/op are the outcome.
                    markers[item_key] = (item.get("etag"), item.get("seq"),
                                         item.get("op"))
        fingerprint[tid] = {
            "objects": sorted((k, dst.head(k).etag, dst.head(k).size)
                              for k in dst.keys()),
            "source": sorted((k, src.head(k).etag) for k in src.keys()),
            "done_markers": dict(sorted(markers.items())),
            "admitted": state.stats["admitted"],
            "ledger_spend": round(state.ledger.lifetime_spent, 12),
            "ledger_entries": len(state.ledger.entries),
        }
    return fingerprint


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_one_and_four_shards_reach_identical_outcomes(seed):
    single = run_workload(seed, shards=1)
    sharded = run_workload(seed, shards=4)
    for tid in TENANTS:
        assert single[tid] == sharded[tid], (
            f"seed {seed} tenant {tid}: shard layout changed outcomes\n"
            f"1 shard: {single[tid]}\n4 shards: {sharded[tid]}")
    # Destination mirrors source exactly in both layouts.
    for tid in TENANTS:
        src_keys = [k for k, _ in single[tid]["source"]]
        dst_keys = [k for k, _, _ in single[tid]["objects"]]
        assert src_keys == dst_keys


def test_four_shards_actually_spread_the_keyspace():
    """Sanity for the equivalence above: with 4 shards the workload
    really does land on multiple engine workers (otherwise the test
    would be comparing 1 shard with itself)."""
    objectstore._fresh_counter = itertools.count()
    cloud = build_default_cloud(seed=0)
    svc = AReplicaService(cloud, ReplicaConfig(profile_samples=4,
                                               mc_samples=300))
    svc.enable_multitenancy(shards=4, max_concurrent=8)
    probe_src = cloud.bucket("aws:us-east-1", "probe-src")
    probe_dst = cloud.bucket("azure:eastus", "probe-dst")
    svc.profiler.ensure_path("aws:us-east-1", probe_src, probe_dst)
    src = cloud.bucket("aws:us-east-1", "t-src")
    dst = cloud.bucket("azure:eastus", "t-dst")
    svc.add_tenant(TenantConfig("spread"), src, dst)
    base = cloud.sim.now
    for i in range(12):
        cloud.sim.call_at(base + 1.0 + 0.5 * i,
                          lambda i=i: src.put_object(f"k{i}", Blob.fresh(KB),
                                                     cloud.sim.now))
    cloud.run()
    assert svc.run_to_convergence().converged
    assert len(svc.tenant_rules("spread")) >= 2, "all keys on one shard"
    shards_used = {svc.shard_router.route("spread", f"k{i}")
                   for i in range(12)}
    assert len(shards_used) >= 2


def test_midrun_rebalance_counts_migrations_and_stays_correct():
    """Growing the ring mid-run: moved live assignments are folded into
    each tenant's ``shard_migrations`` counter, and replication after
    the rebalance still converges (locks and done markers make a key's
    move to a new shard's engine idempotent)."""
    objectstore._fresh_counter = itertools.count()
    cloud = build_default_cloud(seed=3)
    svc = AReplicaService(cloud, ReplicaConfig(profile_samples=4,
                                               mc_samples=300))
    svc.enable_multitenancy(shards=2, max_concurrent=8)
    probe_src = cloud.bucket("aws:us-east-1", "probe-src")
    probe_dst = cloud.bucket("azure:eastus", "probe-dst")
    svc.profiler.ensure_path("aws:us-east-1", probe_src, probe_dst)
    src = cloud.bucket("aws:us-east-1", "m-src")
    dst = cloud.bucket("azure:eastus", "m-dst")
    svc.add_tenant(TenantConfig("mover"), src, dst)
    base = cloud.sim.now
    for i in range(16):
        cloud.sim.call_at(base + 1.0 + 0.25 * i,
                          lambda i=i: src.put_object(f"k{i}", Blob.fresh(KB),
                                                     cloud.sim.now))
    cloud.run()
    assert svc.run_to_convergence().converged

    moved = svc.set_shard_count(6)
    state = svc.tenants["mover"]
    assert moved > 0, "a 2 -> 6 ring growth moved nothing"
    assert state.stats["shard_migrations"] == moved
    # Consistent hashing: growth remaps a minority of the key-space.
    assert moved < 16
    # Overwrite every key post-rebalance: the moved keys now land on
    # fresh shard engines and must still converge to the source.
    for i in range(16):
        cloud.sim.call_at(cloud.sim.now + 1.0 + 0.25 * i,
                          lambda i=i: src.put_object(f"k{i}",
                                                     Blob.fresh(2 * KB),
                                                     cloud.sim.now))
    cloud.run()
    assert svc.run_to_convergence().converged
    for i in range(16):
        assert dst.head(f"k{i}").etag == src.head(f"k{i}").etag
