"""Tests for SLO-bounded batching (Algorithm 4) and the runtime logger."""

import pytest

from repro.core.config import ReplicaConfig
from repro.core.logger import RuntimeLogger
from repro.core.model import LocParams, NormalParam, PathParams, PerformanceModel
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.cost import CostCategory
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024


def build_batched(seed=71, slo=30.0, **cfg):
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(slo_seconds=slo, profile_samples=6, mc_samples=500,
                           **cfg)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("aws:us-east-2", "dst")
    rule = svc.add_rule(src, dst)
    return cloud, svc, src, dst, rule


class TestBatchingBehaviour:
    def test_rapid_updates_aggregate_into_few_replications(self):
        """Fig 22: with a 30 s SLO and 1 update/s, cost stays ~constant:
        far fewer replications than updates."""
        cloud, svc, src, dst, rule = build_batched()

        def producer():
            for _ in range(30):
                src.put_object("hot", Blob.fresh(10 * MB), cloud.now)
                yield cloud.sim.sleep(1.0)

        cloud.sim.run_process(producer())
        cloud.run()
        tasks_run = rule.engine.stats["inline"] + rule.engine.stats["single"] \
            + rule.engine.stats["distributed"]
        assert tasks_run <= 6            # ~one per SLO window, not 30
        assert dst.head("hot").etag == src.head("hot").etag

    def test_all_updates_meet_slo(self):
        cloud, svc, src, dst, rule = build_batched(seed=73)

        def producer():
            for _ in range(20):
                src.put_object("hot", Blob.fresh(10 * MB), cloud.now)
                yield cloud.sim.sleep(2.0)

        cloud.sim.run_process(producer())
        cloud.run()
        delays = svc.delays()
        assert len(delays) == 20
        violations = [d for d in delays if d > 30.0]
        assert len(violations) <= 1      # "very few violations" (Fig 22a)

    def test_batching_defers_single_update_toward_deadline(self):
        cloud, svc, src, dst, rule = build_batched(seed=79)
        src.put_object("solo", Blob.fresh(10 * MB), cloud.now)
        cloud.run()
        [record] = [r for r in svc.records if r.key == "solo"]
        # Replication was intentionally delayed toward (but within) the SLO.
        assert 5.0 < record.delay <= 30.0

    def test_batching_disabled_replicates_immediately(self):
        cloud, svc, src, dst, rule = build_batched(seed=83,
                                                   enable_batching=False)
        src.put_object("solo", Blob.fresh(10 * MB), cloud.now)
        cloud.run()
        [record] = [r for r in svc.records if r.key == "solo"]
        assert record.delay < 5.0

    def test_zero_slo_disables_batching(self):
        cloud, svc, src, dst, rule = build_batched(seed=89, slo=0.0)
        assert rule.batcher is None

    def test_batched_cost_lower_than_unbatched(self):
        def run_workload(enable_batching):
            cloud, svc, src, dst, rule = build_batched(
                seed=97, enable_batching=enable_batching)
            before = cloud.ledger.snapshot()

            def producer():
                for _ in range(30):
                    src.put_object("hot", Blob.fresh(10 * MB), cloud.now)
                    yield cloud.sim.sleep(1.0)

            cloud.sim.run_process(producer())
            cloud.run()
            delta = before.delta(cloud.ledger.snapshot())
            return delta.totals.get(CostCategory.EGRESS, 0.0)

        assert run_workload(True) < run_workload(False) / 3

    def test_deletes_not_lost_under_batching(self):
        cloud, svc, src, dst, rule = build_batched(seed=101)
        src.put_object("doomed", Blob.fresh(MB), cloud.now)
        cloud.run(until=cloud.now + 1.0)
        src.delete_object("doomed", cloud.now)
        cloud.run()
        assert "doomed" not in dst

    def test_batcher_stats(self):
        cloud, svc, src, dst, rule = build_batched(seed=103)
        for _ in range(5):
            src.put_object("hot", Blob.fresh(MB), cloud.now)
        cloud.run()
        stats = rule.batcher.stats
        assert stats["delayed"] >= 1
        assert stats["flushes"] >= 1
        assert rule.batcher.pending_count() == 0


class TestRuntimeLogger:
    def _model(self):
        model = PerformanceModel(chunk_size=8 * MB)
        model.set_loc_params("loc", LocParams(
            NormalParam(0.02, 0.005), NormalParam(0.3, 0.05), NormalParam.zero()))
        model.set_path_params(("loc", "s", "d"), PathParams(
            NormalParam(0.2, 0.05), NormalParam(0.2, 0.04), NormalParam(0.25, 0.05)))
        return model

    def test_no_correction_for_noise(self):
        model = self._model()
        logger = RuntimeLogger(model, patience=5)
        path = ("loc", "s", "d")
        for i in range(20):
            actual = 1.0 * (1.05 if i % 2 else 0.95)
            logger.record(path, 1, MB, predicted_s=1.0, actual_s=actual, time=i)
        assert logger.corrections(path) == 0

    def test_persistent_drift_triggers_correction(self):
        model = self._model()
        logger = RuntimeLogger(model, patience=5)
        path = ("loc", "s", "d")
        chunk_before = model.path_params[path].chunk.mean
        for i in range(30):
            logger.record(path, 1, MB, predicted_s=1.0, actual_s=2.2, time=i)
        assert logger.corrections(path) >= 1
        assert model.path_params[path].chunk.mean > chunk_before

    def test_correction_direction_down(self):
        model = self._model()
        logger = RuntimeLogger(model, patience=5)
        path = ("loc", "s", "d")
        chunk_before = model.path_params[path].chunk.mean
        for i in range(30):
            logger.record(path, 1, MB, predicted_s=1.0, actual_s=0.4, time=i)
        assert model.path_params[path].chunk.mean < chunk_before

    def test_timings_recorded(self):
        logger = RuntimeLogger(self._model())
        logger.record(("loc", "s", "d"), 4, MB, 1.0, 1.1, time=0.0)
        assert len(logger.timings) == 1
        assert logger.observations(("loc", "s", "d")) == 1

    def test_degenerate_values_ignored(self):
        logger = RuntimeLogger(self._model())
        logger.record(("loc", "s", "d"), 1, MB, 0.0, 1.0, time=0.0)
        logger.record(("loc", "s", "d"), 1, MB, 1.0, 0.0, time=0.0)
        assert logger.observations(("loc", "s", "d")) == 0

    def test_correction_resets_drift_state(self):
        model = self._model()
        logger = RuntimeLogger(model, patience=3)
        path = ("loc", "s", "d")
        for i in range(10):
            logger.record(path, 1, MB, 1.0, 3.0, time=i)
        first = logger.corrections(path)
        assert first >= 1
        # After correction, accurate predictions cause no more changes.
        for i in range(10):
            logger.record(path, 1, MB, 1.0, 1.0, time=i)
        assert logger.corrections(path) == first
