"""Model-based test of the part pool under random worker interleavings,
duplications, and reclaims — the Algorithm 1 state machine."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.partpool import PartPool
from repro.simcloud.cloud import build_default_cloud

NUM_PARTS = 8


class PartPoolMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cloud = build_default_cloud(seed=77)
        self.table = self.cloud.kv_table("aws:us-east-1", "state")
        self.pool = PartPool(self.table, "task", NUM_PARTS)
        self.cloud.sim.run_process(self.pool.create())
        self.claimed: list[int] = []          # indices handed out
        self.completed: set[int] = set()
        self.finish_signals = 0
        self.pool_exhausted = False

    def _run(self, gen):
        return self.cloud.sim.run_process(gen)

    @rule()
    def claim(self):
        idx = self._run(self.pool.claim())
        if idx is None:
            self.pool_exhausted = True
            assert len(self.claimed) == NUM_PARTS
        else:
            assert 0 <= idx < NUM_PARTS
            assert idx not in self.claimed   # allocator never repeats
            self.claimed.append(idx)

    @rule(data=st.data())
    def complete_claimed(self, data):
        outstanding = [i for i in self.claimed if i not in self.completed]
        if not outstanding:
            return
        idx = data.draw(st.sampled_from(outstanding))
        finished = self._run(self.pool.complete(idx))
        self.completed.add(idx)
        if finished:
            self.finish_signals += 1

    @rule(data=st.data())
    def duplicate_complete(self, data):
        """A retried worker redoing a part must not double-count."""
        if not self.completed:
            return
        idx = data.draw(st.sampled_from(sorted(self.completed)))
        finished = self._run(self.pool.complete(idx))
        assert not finished or self.finish_signals == 0

    @rule(data=st.data(), worker=st.integers(0, 3))
    def reclaim_attempt(self, data, worker):
        idx = data.draw(st.integers(0, NUM_PARTS - 1))
        self._run(self.pool.try_reclaim(idx, f"w{worker}", self.cloud.now))

    # -- invariants ----------------------------------------------------------

    @invariant()
    def progress_counters_consistent(self):
        state = self.pool.peek_progress()
        assert state["completed"] == len(self.completed)
        assert set(state.get("done_parts", [])) == self.completed

    @invariant()
    def at_most_one_finish_signal(self):
        assert self.finish_signals <= 1
        if self.finish_signals == 1:
            assert self.completed == set(range(NUM_PARTS))

    @invariant()
    def missing_parts_complement_done(self):
        missing = self._run(self.pool.missing_parts())
        assert set(missing) == set(range(NUM_PARTS)) - self.completed


TestPartPoolStateMachine = PartPoolMachine.TestCase
TestPartPoolStateMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None)
