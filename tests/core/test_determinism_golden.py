"""Golden determinism: seeded runs are bit-reproducible.

The performance work (event-record kernel, zero-delay ring, buffered
RNG sampling, plan/Monte-Carlo caching) must never introduce run-to-run
variation: two simulations built from the same seed have to produce
*identical* replication delays, cost ledgers, and event orderings.
These tests run each scenario twice in-process and compare exactly.
"""

import itertools
import json

from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud import objectstore
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob
from repro.simcloud.sim import Simulator
from repro.traces.ibm_cos import IbmCosTraceGenerator
from repro.traces.replay import TraceReplayer

MB = 1024**2


def _fig12_scenario(seed: int):
    """A distributed replication (Fig 12 shape): one large object split
    across parallel replicator functions, plus chaos-free retries of
    small objects — the full lock/pool/finalize protocol."""
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(slo_seconds=0.0, profile_samples=5, mc_samples=300)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("azure:eastus", "dst")
    svc.add_rule(src, dst)
    src.put_object("big", Blob.fresh(768 * MB), cloud.now)
    for i in range(6):
        src.put_object(f"small-{i}", Blob.fresh((i + 1) * 64 * 1024),
                       cloud.now + 0.2 * i)
    cloud.run()
    return (
        [ (r.key, r.seq, r.kind, r.event_time, r.visible_time, r.plan_n)
          for r in svc.records ],
        sorted(cloud.ledger.breakdown().items()),
        cloud.now,
    )


def _fig23_slice(seed: int, idle_lifecycle_runner: bool = False,
                 idle_multitenancy: bool = False,
                 idle_autopilot: bool = False):
    """A one-minute slice of the Fig 23 busy-hour replay."""
    gen = IbmCosTraceGenerator(seed=seed)
    batches = [b for b in gen.generate_batches(60.0)]
    cloud = build_default_cloud(seed=seed)
    svc = AReplicaService(cloud, ReplicaConfig(profile_samples=5,
                                               mc_samples=300))
    if idle_multitenancy:
        # Scheduler + shard router built, zero tenants registered:
        # classic rules must not route through either.
        svc.enable_multitenancy(shards=4, max_concurrent=8)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("azure:eastus", "dst")
    rule = svc.add_rule(src, dst)
    if idle_lifecycle_runner:
        from repro.core.lifecycle import OperationsRunner
        OperationsRunner(svc, rule.rule_id)  # constructed, never scheduled
    if idle_autopilot:
        from repro.core.autopilot import Autopilot
        Autopilot(svc)  # constructed, never started
    TraceReplayer(cloud, src).replay_all_batches(batches)
    return (
        svc.delays(),
        sorted(cloud.ledger.breakdown().items()),
        svc.pending_count(),
        cloud.now,
    )


class TestSeededReproducibility:
    def test_fig12_scenario_bit_identical(self):
        first = _fig12_scenario(seed=42)
        second = _fig12_scenario(seed=42)
        assert first == second
        records, ledger, _now = first
        assert records, "scenario produced no replications"
        assert any(n and n > 1 for *_rest, n in records), \
            "no distributed plan exercised"

    def test_fig23_slice_bit_identical(self):
        first = _fig23_slice(seed=7)
        second = _fig23_slice(seed=7)
        assert first == second
        delays, ledger, pending, _now = first
        assert delays and pending == 0

    def test_different_seeds_differ(self):
        # Sanity check that the comparisons above can actually fail.
        assert _fig23_slice(seed=7)[0] != _fig23_slice(seed=8)[0]

    def test_idle_lifecycle_runner_is_byte_invisible(self):
        """Lifecycle off == lifecycle absent.  An OperationsRunner that
        is constructed but never scheduled must not shift a single RNG
        draw, event, or ledger entry: runs with and without it are
        byte-identical across seeds (the planned-operations layer's
        zero-perturbation guarantee)."""
        for seed in (0, 1, 2):
            plain = _fig23_slice(seed=seed)
            with_runner = _fig23_slice(seed=seed, idle_lifecycle_runner=True)
            assert plain == with_runner, f"seed {seed} perturbed"

    def test_idle_multitenancy_is_byte_invisible(self):
        """Multi-tenancy off == multi-tenancy absent.  A service with
        the fair-share scheduler and shard router constructed but no
        tenants registered must run a classic single-rule workload
        byte-identically: no extra RNG draw, event, or ledger entry —
        the single-tenant fast path stays one ``is None`` check."""
        for seed in (0, 1, 2):
            plain = _fig23_slice(seed=seed)
            with_mt = _fig23_slice(seed=seed, idle_multitenancy=True)
            assert plain == with_mt, f"seed {seed} perturbed"

    def test_idle_autopilot_is_byte_invisible(self):
        """Autopilot off == autopilot absent.  An ``Autopilot`` that is
        constructed but never started must not shift a single RNG draw,
        event, timer, or ledger entry: construction is side-effect free
        (the monitor, probes, and knob registry are built lazily in
        ``start()``), so ``enable_autopilot=False`` — where nothing is
        even constructed — is byte-invisible a fortiori."""
        for seed in (0, 1, 2):
            plain = _fig23_slice(seed=seed)
            with_ap = _fig23_slice(seed=seed, idle_autopilot=True)
            assert plain == with_ap, f"seed {seed} perturbed"


def _traced_export(seed: int, path):
    """A traced Fig-12-shaped run, exported as Chrome trace JSON."""
    # Blob content ids come from one process-global counter (the only
    # cross-run state in the simulator); resetting it lets two in-process
    # runs mint identical ids.  The counter stays monotonic afterwards,
    # so uniqueness within every later scenario is preserved.
    objectstore._fresh_counter = itertools.count()
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(slo_seconds=0.0, profile_samples=5,
                           mc_samples=300, tracing_enabled=True)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("azure:eastus", "dst")
    svc.add_rule(src, dst)
    src.put_object("big", Blob.fresh(256 * MB), cloud.now)
    for i in range(4):
        src.put_object(f"small-{i}", Blob.fresh((i + 1) * 64 * 1024),
                       cloud.now + 0.2 * i)
    cloud.run()
    svc.run_to_convergence()
    svc.tracer.export_chrome(str(path))
    return path.read_bytes()


class TestGoldenTraceExport:
    def test_traced_run_exports_byte_identical_json(self, tmp_path):
        first = _traced_export(42, tmp_path / "a.json")
        second = _traced_export(42, tmp_path / "b.json")
        assert first == second
        events = json.loads(first)["traceEvents"]
        assert events, "export carries no events"
        assert {e["ph"] for e in events} <= {"M", "X", "i"}
        phases = {e["name"] for e in events if e.get("cat") == "phase"}
        assert {"N", "I", "D", "S", "C"} <= phases

    def test_different_seeds_export_differently(self, tmp_path):
        # Sanity check that the byte comparison above can actually fail.
        assert _traced_export(42, tmp_path / "a.json") != \
            _traced_export(43, tmp_path / "b.json")


class TestKernelOrderingDeterminism:
    def test_same_timestamp_events_fire_in_schedule_order(self):
        def trace():
            sim = Simulator()
            order = []
            for i in range(50):
                sim.call_at(1.0, lambda i=i: order.append(("timer", i)))
            def proc(i):
                yield sim.sleep(1.0)
                order.append(("proc", i))
            for i in range(50):
                sim.spawn(proc(i))
            sim.run()
            return order

        first = trace()
        assert first == trace()
        # Within one timestamp the firing order is the scheduling order.
        assert first == sorted(first, key=lambda e: (e[0] != "timer", e[1]))
