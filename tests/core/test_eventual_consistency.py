"""Randomized eventual-consistency tests.

The system's core guarantee (§5.2): after the dust settles, every
destination bucket holds exactly the source's final state — regardless
of update rates, interleavings, deletes, object sizes, notification
reordering, lock contention, or injected crashes.  These tests generate
randomized workloads (including hypothesis-driven operation sequences)
and assert full convergence after the simulation drains.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024


def build(seed, slo=0.0, dst_key="aws:us-east-2", **cfg):
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(slo_seconds=slo, profile_samples=5, mc_samples=300,
                           **cfg)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket(dst_key, "dst")
    rule = svc.add_rule(src, dst)
    return cloud, svc, src, dst, rule


def assert_converged(svc, src, dst):
    """Destination mirrors the source exactly; no event unaccounted; the
    full consistency audit (divergence, upload leaks, measurement gaps,
    stale control state) comes back clean."""
    from repro.core.audit import ReplicationAuditor

    assert svc.pending_count() == 0
    for key in src.keys():
        assert key in dst, f"{key} missing at destination"
        assert dst.head(key).etag == src.head(key).etag, f"{key} differs"
    for key in dst.keys():
        assert key in src, f"{key} lingers at destination after delete"
    report = ReplicationAuditor(svc).audit()
    assert report.clean, report.render()


def drain_with_operator_recovery(cloud, svc):
    """Drain the sim; if any event dead-lettered (every auto-retry of
    some function crashed), perform the operational recovery: wait out
    the replication-lock lease, redrive the DLQ, drain again."""
    cloud.run()
    for _ in range(3):
        has_dlq = any(cloud.faas(r).dead_letters
                      for rule in svc.rules.values()
                      for r in (rule.src_bucket.region.key,
                                rule.dst_bucket.region.key))
        if not has_dlq and svc.pending_count() == 0:
            return
        cloud.sim.run(until=cloud.now + 301.0)  # lock lease expiry
        svc.redrive_dead_letters()
        cloud.run()


# Operation encoding for hypothesis: (key_id, action, size_exponent).
_ops = st.lists(
    st.tuples(st.integers(0, 5), st.sampled_from(["put", "put", "put", "delete"]),
              st.integers(0, 8)),
    min_size=1, max_size=25,
)


class TestRandomizedConvergence:
    @given(ops=_ops)
    @settings(max_examples=15, deadline=None)
    def test_instantaneous_op_burst_converges(self, ops):
        """All operations issued at a single instant (maximal notification
        reordering and lock contention)."""
        cloud, svc, src, dst, rule = build(seed=201)
        for key_id, action, size_exp in ops:
            key = f"k{key_id}"
            if action == "delete":
                src.delete_object(key, cloud.now)
            else:
                src.put_object(key, Blob.fresh(2 ** size_exp * 1024), cloud.now)
        cloud.run()
        assert_converged(svc, src, dst)

    @given(ops=_ops, spacing=st.floats(0.05, 5.0))
    @settings(max_examples=15, deadline=None)
    def test_spaced_op_sequence_converges(self, ops, spacing):
        cloud, svc, src, dst, rule = build(seed=202)

        def driver():
            for key_id, action, size_exp in ops:
                key = f"k{key_id}"
                if action == "delete":
                    src.delete_object(key, cloud.now)
                else:
                    src.put_object(key, Blob.fresh(2 ** size_exp * 1024),
                                   cloud.now)
                yield cloud.sim.sleep(spacing)

        cloud.sim.run_process(driver())
        cloud.run()
        assert_converged(svc, src, dst)

    @given(ops=_ops)
    @settings(max_examples=10, deadline=None)
    def test_convergence_under_batching(self, ops):
        cloud, svc, src, dst, rule = build(seed=203, slo=20.0)

        def driver():
            for key_id, action, size_exp in ops:
                key = f"k{key_id}"
                if action == "delete":
                    src.delete_object(key, cloud.now)
                else:
                    src.put_object(key, Blob.fresh(2 ** size_exp * 1024),
                                   cloud.now)
                yield cloud.sim.sleep(0.5)

        cloud.sim.run_process(driver())
        cloud.run()
        assert_converged(svc, src, dst)


class TestAdversarialPatterns:
    def test_put_delete_put_same_instant(self):
        cloud, svc, src, dst, rule = build(seed=204)
        src.put_object("k", Blob.fresh(MB), cloud.now)
        src.delete_object("k", cloud.now)
        final = src.put_object("k", Blob.fresh(MB), cloud.now)
        cloud.run()
        assert dst.head("k").etag == final.etag
        assert svc.pending_count() == 0

    def test_delete_put_delete_same_instant(self):
        cloud, svc, src, dst, rule = build(seed=205)
        src.put_object("k", Blob.fresh(MB), cloud.now)
        cloud.run()
        src.delete_object("k", cloud.now)
        src.put_object("k", Blob.fresh(MB), cloud.now)
        src.delete_object("k", cloud.now)
        cloud.run()
        assert "k" not in dst
        assert svc.pending_count() == 0

    def test_many_versions_single_instant_converges_to_last(self):
        cloud, svc, src, dst, rule = build(seed=206)
        final = None
        for _ in range(12):
            final = src.put_object("hot", Blob.fresh(MB), cloud.now)
        cloud.run()
        assert dst.head("hot").etag == final.etag

    def test_large_object_overwritten_by_small_converges(self):
        cloud, svc, src, dst, rule = build(seed=207, dst_key="azure:eastus")
        src.put_object("k", Blob.fresh(512 * MB), cloud.now)

        def overwriter():
            yield cloud.sim.sleep(1.5)
            src.put_object("k", Blob.fresh(1 * MB), cloud.now)

        cloud.sim.spawn(overwriter())
        cloud.run()
        assert dst.head("k").etag == src.head("k").etag
        assert svc.pending_count() == 0

    def test_interleaved_sizes_across_modes(self):
        """Keys alternate between inline, single-remote, and distributed
        replication modes across versions."""
        cloud, svc, src, dst, rule = build(seed=208, dst_key="azure:eastus")
        sizes = [1 * MB, 256 * MB, 4 * MB, 96 * MB, 512 * MB, 2 * MB]

        def driver():
            for size in sizes:
                src.put_object("shape-shifter", Blob.fresh(size), cloud.now)
                yield cloud.sim.sleep(2.0)

        cloud.sim.run_process(driver())
        cloud.run()
        assert dst.head("shape-shifter").etag == src.head("shape-shifter").etag
        assert svc.pending_count() == 0

    def test_convergence_with_chaos_and_random_ops(self):
        cloud, svc, src, dst, rule = build(seed=209, dst_key="azure:eastus")
        for region in ("aws:us-east-1", "azure:eastus"):
            cloud.faas(region).chaos_crash_prob = 0.2
            cloud.faas(region).chaos_mean_delay_s = 0.4
        rng = np.random.default_rng(3)

        def driver():
            for _ in range(30):
                key = f"k{int(rng.integers(0, 8))}"
                if rng.random() < 0.2 and key in src:
                    src.delete_object(key, cloud.now)
                else:
                    src.put_object(key, Blob.fresh(int(rng.integers(1, 24)) * MB),
                                   cloud.now)
                yield cloud.sim.sleep(float(rng.exponential(1.0)))

        cloud.sim.run_process(driver())
        drain_with_operator_recovery(cloud, svc)
        assert_converged(svc, src, dst)

    def test_two_rules_same_source_remain_independent(self):
        cloud = build_default_cloud(seed=210)
        config = ReplicaConfig(profile_samples=5, mc_samples=300)
        svc = AReplicaService(cloud, config)
        src = cloud.bucket("aws:us-east-1", "src")
        dst_a = cloud.bucket("azure:eastus", "a")
        dst_b = cloud.bucket("gcp:us-east1", "b")
        svc.add_rule(src, dst_a)
        svc.add_rule(src, dst_b)
        rng = np.random.default_rng(4)
        for i in range(25):
            key = f"k{int(rng.integers(0, 6))}"
            if rng.random() < 0.2 and key in src:
                src.delete_object(key, cloud.now)
            else:
                src.put_object(key, Blob.fresh(int(rng.integers(1, 8)) * MB),
                               cloud.now)
        cloud.run()
        for dst in (dst_a, dst_b):
            for key in src.keys():
                assert dst.head(key).etag == src.head(key).etag
            for key in dst.keys():
                assert key in src
        assert svc.pending_count() == 0

    def test_content_match_short_circuits_replication(self):
        """When the destination already holds identical content (e.g. a
        pre-seeded replica), no bytes move."""
        from repro.simcloud.cost import CostCategory

        cloud, svc, src, dst, rule = build(seed=212, dst_key="azure:eastus")
        blob = Blob.fresh(64 * MB)
        dst.put_object("k", blob, cloud.now, notify=False)  # pre-seeded
        egress_before = cloud.ledger.total(CostCategory.EGRESS)
        src.put_object("k", blob, cloud.now)
        cloud.run()
        assert rule.engine.stats.get("content_skipped", 0) == 1
        assert cloud.ledger.total(CostCategory.EGRESS) == egress_before
        assert svc.pending_count() == 0

    def test_bidirectional_rules_do_not_ping_pong(self):
        """A ↔ B mutual replication: a write converges to both sides and
        the system quiesces instead of bouncing the object forever.

        Small objects are damped by the done-marker ETag check (one
        redundant bounce, then quiescence); large objects additionally
        short-circuit on a destination HEAD before moving any bytes.
        """
        cloud = build_default_cloud(seed=213)
        config = ReplicaConfig(profile_samples=5, mc_samples=300)
        svc = AReplicaService(cloud, config)
        a = cloud.bucket("aws:us-east-1", "a")
        b = cloud.bucket("azure:eastus", "b")
        rule_ab = svc.add_rule(a, b)
        rule_ba = svc.add_rule(b, a)
        small = Blob.fresh(4 * MB)
        a.put_object("small", small, cloud.now)
        cloud.run()  # would never terminate if the pair ping-ponged
        assert b.head("small").etag == small.etag
        assert a.head("small").etag == small.etag
        total_tasks = rule_ab.engine.stats["tasks"] + rule_ba.engine.stats["tasks"]
        assert total_tasks <= 4

        big = Blob.fresh(128 * MB)
        a.put_object("big", big, cloud.now)
        cloud.run()
        assert b.head("big").etag == big.etag
        # The reverse rule recognized the content was already home
        # without transferring anything.
        assert rule_ba.engine.stats.get("content_skipped", 0) >= 1

    def test_chained_replication_propagates_transitively(self):
        """A→B and B→C rules: writes to A eventually reach C (the B
        bucket's replicated PUTs emit their own notifications)."""
        cloud = build_default_cloud(seed=211)
        config = ReplicaConfig(profile_samples=5, mc_samples=300)
        svc = AReplicaService(cloud, config)
        a = cloud.bucket("aws:us-east-1", "a")
        b = cloud.bucket("azure:eastus", "b")
        c = cloud.bucket("gcp:us-east1", "c")
        svc.add_rule(a, b)
        svc.add_rule(b, c)
        blob = Blob.fresh(16 * MB)
        a.put_object("k", blob, cloud.now)
        cloud.run()
        assert b.head("k").etag == blob.etag
        assert c.head("k").etag == blob.etag
