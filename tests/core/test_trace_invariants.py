"""The trace-invariant oracle, as a property over chaos/outage runs.

Two layers:

* **Soaks** — any seeded storm or outage schedule, run with tracing
  enabled, must converge with a *checker-clean* trace: the oracle (not
  per-scenario asserts) is the property.
* **Synthetic traces** — every finding kind the checker can emit is
  proven to actually fire by feeding hand-built event sequences into a
  bare tracer, plus positive cases proving legal lifecycles (including
  the fence-generation restart) stay clean.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ReplicaConfig
from repro.core.invariants import TraceChecker
from repro.core.service import AReplicaService
from repro.core.tracing import PHASES, Tracer, task_ref
from repro.simcloud.chaos import ChaosConfig
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.cost import CostCategory, CostLedger
from repro.simcloud.objectstore import Blob

pytestmark = pytest.mark.trace

KB = 1024
MB = 1024 * 1024
SRC = "aws:us-east-1"
DST = "azure:eastus"

STORM = ChaosConfig(
    crash_prob=0.08,
    notif_drop_prob=0.08, notif_dup_prob=0.08, notif_reorder_prob=0.08,
    notif_redelivery_s=20.0,
    kv_reject_prob=0.08, kv_delay_prob=0.08,
    wan_stall_prob=0.03,
)


def traced_soak(seed: int, chaos: ChaosConfig = STORM):
    """The chaos-convergence soak workload, with the tracer recording."""
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(profile_samples=4, mc_samples=300,
                           tracing_enabled=True)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket(SRC, "src")
    dst = cloud.bucket(DST, "dst")
    rule = svc.add_rule(src, dst)
    cloud.apply_chaos(chaos)

    rng = cloud.rngs.stream("chaos-workload")
    keys = [f"obj{i}" for i in range(6)]
    t = 1.0
    for _ in range(25):
        t += float(rng.exponential(2.0))
        key = keys[int(rng.integers(len(keys)))]
        if rng.random() < 0.2:
            cloud.sim.call_later(t, lambda k=key: (
                k in src and src.delete_object(k, cloud.sim.now)))
        else:
            size = int(rng.integers(1, 64)) * KB
            cloud.sim.call_later(t, lambda k=key, s=size: src.put_object(
                k, Blob.fresh(s), cloud.sim.now))
    cloud.sim.call_later(t / 2, lambda: src.put_object(
        "obj-big", Blob.fresh(48 * MB), cloud.sim.now))
    cloud.run()

    cloud.apply_chaos(None)
    svc.run_to_convergence()
    return cloud, svc, src, dst, rule


# ---------------------------------------------------------------------------
# soaks: the oracle is the property
# ---------------------------------------------------------------------------

@given(seed=st.integers(0, 10_000))
@settings(max_examples=6, deadline=None)
def test_any_seeded_storm_leaves_a_clean_trace(seed):
    cloud, svc, src, dst, rule = traced_soak(seed)
    report = TraceChecker(svc).check()
    assert report.clean, f"seed {seed}:\n{report.render()}"
    # The pass actually looked at work, not an empty trace.
    assert report.checked["visibles"] > 0
    assert report.checked["lock_acquires"] > 0
    assert report.checked["done_markers"] > 0
    assert report.checked["cost_records"] > 0


@given(seed=st.integers(0, 10_000))
@settings(max_examples=3, deadline=None)
def test_randomized_chaos_mix_leaves_a_clean_trace(seed):
    """Chaos *parameters* are drawn from the seed too — including an
    optional sustained KV outage window over the workload."""
    rng = np.random.default_rng(seed)
    windows = ()
    if rng.random() < 0.5:
        start = float(rng.uniform(0.0, 20.0))
        windows = ((SRC, start, float(rng.uniform(30.0, 120.0))),)
    chaos = ChaosConfig(
        crash_prob=float(rng.uniform(0.0, 0.1)),
        notif_drop_prob=float(rng.uniform(0.0, 0.1)),
        notif_dup_prob=float(rng.uniform(0.0, 0.1)),
        notif_reorder_prob=float(rng.uniform(0.0, 0.1)),
        notif_redelivery_s=20.0,
        kv_reject_prob=float(rng.uniform(0.0, 0.1)),
        kv_delay_prob=float(rng.uniform(0.0, 0.1)),
        wan_stall_prob=float(rng.uniform(0.0, 0.04)),
        kv_outages=windows,
    )
    cloud, svc, src, dst, rule = traced_soak(seed, chaos)
    report = TraceChecker(svc).check()
    assert report.clean, f"seed {seed} chaos {chaos}:\n{report.render()}"
    for key in src.keys():
        assert dst.head(key).etag == src.head(key).etag


def test_fixed_seed_storm_trace_and_stats_well_formed():
    cloud, svc, src, dst, rule = traced_soak(1234)
    report = TraceChecker(svc).check()
    assert report.clean, report.render()
    stats = rule.engine.stats
    assert stats["kv_retries"] > 0
    # Counters this storm may or may not trip must still be well-formed
    # non-negative integers (the stats-contract test pins the key set).
    for key in ("retriggered", "backlog_kv_failed", "recovered_parts",
                "recovered_finalize", "probes", "failover"):
        value = stats.get(key, 0)
        assert isinstance(value, int) and value >= 0, key


def test_sustained_kv_outage_parks_probes_and_drains_clean():
    cloud = build_default_cloud(seed=901)
    config = ReplicaConfig(profile_samples=5, mc_samples=300,
                           tracing_enabled=True)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket(SRC, "src")
    dst = cloud.bucket(DST, "dst")
    rule = svc.add_rule(src, dst)
    cloud.apply_chaos(ChaosConfig(kv_outages=((SRC, 0.0, 600.0),)))

    def driver():
        for i in range(12):
            src.put_object(f"k{i}", Blob.fresh(MB), cloud.now)
            yield cloud.sim.sleep(30.0)

    cloud.sim.run_process(driver())
    convergence = svc.run_to_convergence()
    assert convergence.converged
    report = TraceChecker(svc).check()
    assert report.clean, report.render()
    # Degradation ran: the park-leak invariant was checked over real
    # parked entries, and the backlog probe loop actually probed.
    assert report.checked["parked"] > 0
    assert rule.engine.stats["parked"] > 0
    assert rule.engine.stats["drained"] == rule.engine.stats["parked"]
    assert rule.engine.stats["probes"] > 0
    parks = [e for e in svc.tracer.events if e.name == "park"]
    drains = [e for e in svc.tracer.events if e.name == "drain"]
    assert len(drains) == len(parks) > 0


# ---------------------------------------------------------------------------
# differential: one workload, single-function vs distributed plans
# ---------------------------------------------------------------------------

def _run_forced(seed: int, plan):
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(profile_samples=4, mc_samples=300,
                           tracing_enabled=True)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket(SRC, "src")
    dst = cloud.bucket(DST, "dst")
    rule = svc.add_rule(src, dst)
    rule.engine.forced_plan = plan
    for i in range(6):
        size = (i % 3 + 1) * 12 * MB
        cloud.sim.call_later(1.0 + 2.0 * i, lambda k=f"d{i}", s=size:
                             src.put_object(k, Blob.fresh(s), cloud.sim.now))
    cloud.sim.call_later(16.0, lambda: (
        "d1" in src and src.delete_object("d1", cloud.sim.now)))
    cloud.run()
    svc.run_to_convergence()
    report = TraceChecker(svc).check()
    visible = sorted({e.task for e in svc.tracer.events
                      if e.name == "visible" and e.task})
    dst_state = {k: dst.head(k).etag for k in dst.keys()}
    src_state = {k: src.head(k).etag for k in src.keys()}
    return dst_state, src_state, visible, report, rule.engine.stats


def test_single_vs_distributed_modes_converge_identically():
    """Differential: the same workload pushed through forced 1-function
    plans and forced 8-way distributed plans must reach the same final
    bucket state, see the same task lifecycle, and both trace clean."""
    s_dst, s_src, s_visible, s_report, s_stats = _run_forced(4242, (1, SRC))
    d_dst, d_src, d_visible, d_report, d_stats = _run_forced(4242, (8, SRC))
    assert s_dst == s_src and d_dst == d_src
    assert set(s_dst) == set(d_dst)
    assert s_visible == d_visible and s_visible
    assert s_report.clean, s_report.render()
    assert d_report.clean, d_report.render()
    assert s_stats["single"] + s_stats["inline"] > 0
    assert s_stats["distributed"] == 0
    assert d_stats["distributed"] > 0


# ---------------------------------------------------------------------------
# tracer surface: breakdown, export, attribution helpers
# ---------------------------------------------------------------------------

def _traced_healthy(seed: int = 7):
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(profile_samples=4, mc_samples=300,
                           tracing_enabled=True)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket(SRC, "src")
    dst = cloud.bucket(DST, "dst")
    rule = svc.add_rule(src, dst)
    src.put_object("a", Blob.fresh(256 * KB), cloud.now)
    src.put_object("b", Blob.fresh(24 * MB), cloud.now + 0.5)
    cloud.run()
    svc.run_to_convergence()
    return cloud, svc, rule


def test_healthy_run_populates_the_delay_phases():
    cloud, svc, rule = _traced_healthy()
    breakdown = svc.tracer.delay_breakdown()
    assert set(breakdown) == set(PHASES)
    for phase in ("N", "I", "D", "S", "C"):
        assert breakdown[phase]["count"] > 0, phase
    for row in breakdown.values():
        if row["count"]:
            assert row["mean_s"] * row["count"] == pytest.approx(row["total_s"])
            assert row["p50_s"] <= row["p99_s"] <= row["max_s"]
    table = svc.tracer.render_breakdown()
    assert table.splitlines()[0].startswith("phase")
    assert len(table.splitlines()) == 1 + len(PHASES)


def test_chrome_trace_structure_and_queries():
    cloud, svc, rule = _traced_healthy()
    tr = svc.tracer
    doc = tr.chrome_trace()
    events = doc["traceEvents"]
    assert events[0] == {"name": "process_name", "ph": "M", "pid": 1,
                         "tid": 0, "args": {"name": "areplica"}}
    assert {e["ph"] for e in events} <= {"M", "X", "i"}
    for e in events:
        if "ts" in e:
            assert isinstance(e["ts"], int)
    tasks = tr.tasks()
    assert tasks
    some = tasks[0]
    assert tr.task_spans(some) and tr.task_events(some)
    attributed = tr.attributed_cost()
    assert any(task is not None for task in attributed)
    assert sum(attributed.values()) == pytest.approx(tr.recorded_cost())


def test_task_ref_handles_every_payload_shape():
    assert task_ref({"task": "t1"}) == "t1"
    assert task_ref({"task_id": "t2"}) == "t2"
    assert task_ref({"task": {"task_id": "t3"}}) == "t3"
    assert task_ref({"task": {"key": "k"}}) is None
    assert task_ref({"other": 1}) is None
    assert task_ref(None) is None


def test_checker_requires_a_tracer():
    class _NoTracer:
        tracer = None
        rules = {}

    with pytest.raises(ValueError):
        TraceChecker(_NoTracer())


# ---------------------------------------------------------------------------
# synthetic traces: every finding kind provably fires
# ---------------------------------------------------------------------------

class _FakeSim:
    def __init__(self):
        self.now = 0.0


class _Obj:
    def __init__(self, etag):
        self.etag = etag


class _Bucket:
    def __init__(self, objs=None):
        self._objs = dict(objs or {})

    def __contains__(self, key):
        return key in self._objs

    def head(self, key):
        return self._objs[key]


class _Rule:
    def __init__(self, dst):
        self.dst_bucket = dst


class _Svc:
    def __init__(self, tracer, rules=None):
        self.tracer = tracer
        self.rules = rules or {}


def bare():
    tr = Tracer(_FakeSim())
    return tr, _Svc(tr)


def emit(tr, t, name, cat, task, **attrs):
    tr.sim.now = t
    tr.event(name, cat, task, **attrs)


def acquire(tr, t, key, owner, fence, mode):
    emit(tr, t, "lock-acquire", "lock", owner,
         key=key, owner=owner, fence=fence, mode=mode)


def release(tr, t, key, owner, released, fence=0):
    emit(tr, t, "lock-release", "lock", owner,
         key=key, owner=owner, released=released, fence=fence)


def finalize(tr, t, task, key, fence, op="put", etag="e1", seq=1,
             verified=True):
    emit(tr, t, "finalize", "engine", task,
         key=key, seq=seq, etag=etag, fence=fence, op=op,
         verified=verified)


def visible(tr, t, task, key, kind="created", seq=1):
    emit(tr, t, "visible", "engine", task, key=key, seq=seq, kind=kind)


def kinds(report):
    return {f.kind for f in report.findings}


class TestSyntheticViolations:
    def test_span_closing_before_it_opens(self):
        tr, svc = bare()
        tr.span("plan", "engine", "t1", 5.0, 4.0)
        assert kinds(TraceChecker(svc).check()) == {"clock"}

    def test_records_out_of_clock_order(self):
        tr, svc = bare()
        tr.span("plan", "engine", "t1", 0.0, 5.0)
        tr.span("plan", "engine", "t2", 1.0, 2.0)
        emit(tr, 5.0, "park", "engine", None, rule="r", backlog_id=1, key="k")
        emit(tr, 1.0, "drain", "engine", None, rule="r", backlog_id=1)
        report = TraceChecker(svc).check()
        assert len(report.by_kind("clock")) == 2

    def test_fresh_acquire_while_held(self):
        tr, svc = bare()
        acquire(tr, 0.0, "k", "tA", 1, "fresh")
        acquire(tr, 1.0, "k", "tB", 1, "fresh")
        assert kinds(TraceChecker(svc).check()) == {"lock-order"}

    def test_fresh_acquire_with_wrong_fence(self):
        tr, svc = bare()
        acquire(tr, 0.0, "k", "tA", 3, "fresh")
        assert kinds(TraceChecker(svc).check()) == {"lock-order"}

    def test_takeover_of_unheld_lock(self):
        tr, svc = bare()
        acquire(tr, 0.0, "k", "tA", 2, "takeover")
        assert kinds(TraceChecker(svc).check()) == {"lock-order"}

    def test_takeover_that_does_not_supersede(self):
        tr, svc = bare()
        acquire(tr, 0.0, "k", "tA", 1, "fresh")
        acquire(tr, 1.0, "k", "tB", 3, "takeover")
        assert kinds(TraceChecker(svc).check()) == {"lock-order"}

    def test_reentrant_acquire_by_non_holder(self):
        tr, svc = bare()
        acquire(tr, 0.0, "k", "tA", 1, "fresh")
        acquire(tr, 1.0, "k", "tB", 1, "reentrant")
        assert kinds(TraceChecker(svc).check()) == {"lock-order"}

    def test_release_by_non_holder(self):
        tr, svc = bare()
        acquire(tr, 0.0, "k", "tA", 1, "fresh")
        release(tr, 1.0, "k", "tB", released=True)
        assert kinds(TraceChecker(svc).check()) == {"lock-order"}

    def test_holder_failing_to_release_its_own_lock(self):
        tr, svc = bare()
        acquire(tr, 0.0, "k", "tA", 1, "fresh")
        release(tr, 1.0, "k", "tA", released=False)
        assert kinds(TraceChecker(svc).check()) == {"lock-order"}

    def test_visible_without_any_finalize(self):
        tr, svc = bare()
        visible(tr, 1.0, "t1", "k")
        assert kinds(TraceChecker(svc).check()) == {"unfenced-visible"}

    def test_finalize_with_invalid_fence(self):
        tr, svc = bare()
        finalize(tr, 1.0, "t1", "k", fence=0)
        visible(tr, 2.0, "t1", "k")
        assert kinds(TraceChecker(svc).check()) == {"unfenced-visible"}

    def test_zombie_writer_superseded_fence(self):
        tr, svc = bare()
        acquire(tr, 0.0, "k", "tA", 1, "fresh")
        acquire(tr, 1.0, "k", "tB", 2, "takeover")
        finalize(tr, 2.0, "tA", "k", fence=1)
        visible(tr, 3.0, "tA", "k")
        assert "superseded-fence" in kinds(TraceChecker(svc).check())

    def test_finalize_before_first_acquire(self):
        tr, svc = bare()
        finalize(tr, 2.0, "tA", "k", fence=1)
        acquire(tr, 5.0, "k", "tA", 1, "fresh")
        visible(tr, 6.0, "tA", "k")
        assert "lifecycle" in kinds(TraceChecker(svc).check())

    def test_finalize_before_plan_selection(self):
        tr, svc = bare()
        acquire(tr, 1.0, "k", "tA", 1, "fresh")
        finalize(tr, 2.0, "tA", "k", fence=1)
        tr.span("plan", "engine", "tA", 3.0, 4.0)
        visible(tr, 5.0, "tA", "k")
        assert "lifecycle" in kinds(TraceChecker(svc).check())

    def test_parked_entry_never_drained(self):
        tr, svc = bare()
        emit(tr, 0.0, "park", "engine", None, rule="r", backlog_id=9, key="k")
        report = TraceChecker(svc).check()
        assert kinds(report) == {"park-leak"}
        assert report.checked["parked"] == 1

    def test_drain_of_an_entry_never_parked(self):
        tr, svc = bare()
        emit(tr, 0.0, "drain", "engine", None, rule="r", backlog_id=9)
        assert kinds(TraceChecker(svc).check()) == {"park-leak"}

    def test_double_drain(self):
        tr, svc = bare()
        emit(tr, 0.0, "park", "engine", None, rule="r", backlog_id=9, key="k")
        emit(tr, 1.0, "drain", "engine", None, rule="r", backlog_id=9)
        emit(tr, 2.0, "drain", "engine", None, rule="r", backlog_id=9)
        assert kinds(TraceChecker(svc).check()) == {"park-leak"}

    def test_done_marker_for_a_missing_destination_key(self):
        tr, _ = bare()
        svc = _Svc(tr, {"r": _Rule(_Bucket())})
        emit(tr, 0.0, "done-marker", "engine", "t1",
             rule="r", key="k", seq=1, etag="e1", op="put")
        assert kinds(TraceChecker(svc).check()) == {"done-mismatch"}

    def test_done_marker_etag_disagreement(self):
        tr, _ = bare()
        svc = _Svc(tr, {"r": _Rule(_Bucket({"k": _Obj("other")}))})
        emit(tr, 0.0, "done-marker", "engine", "t1",
             rule="r", key="k", seq=1, etag="e1", op="put")
        assert kinds(TraceChecker(svc).check()) == {"done-mismatch"}

    def test_delete_marker_but_key_survives(self):
        tr, _ = bare()
        svc = _Svc(tr, {"r": _Rule(_Bucket({"k": _Obj("e1")}))})
        emit(tr, 0.0, "done-marker", "engine", "t1",
             rule="r", key="k", seq=2, etag="e1", op="delete")
        assert kinds(TraceChecker(svc).check()) == {"done-mismatch"}

    def test_put_finalize_without_verification_verdict(self):
        tr, svc = bare()
        acquire(tr, 0.0, "k", "tA", 1, "fresh")
        finalize(tr, 1.0, "tA", "k", fence=1, verified=False)
        visible(tr, 2.0, "tA", "k")
        release(tr, 3.0, "k", "tA", released=True, fence=1)
        assert "unverified-finalize" in kinds(TraceChecker(svc).check())

    def test_detected_corruption_never_resolved(self):
        tr, svc = bare()
        emit(tr, 1.0, "corrupt-detected", "engine", "tA",
             key="k", stage="part-get", kind="payload", part=0)
        assert "silent-corruption" in kinds(TraceChecker(svc).check())

    def test_corruption_resolved_by_later_verified_finalize(self):
        tr, svc = bare()
        acquire(tr, 0.0, "k", "tA", 1, "fresh")
        emit(tr, 1.0, "corrupt-detected", "engine", "tA",
             key="k", stage="part-get", kind="payload", part=0)
        finalize(tr, 2.0, "tA", "k", fence=1)
        visible(tr, 3.0, "tA", "k")
        release(tr, 4.0, "k", "tA", released=True, fence=1)
        report = TraceChecker(svc).check()
        assert report.clean, report.render()
        assert report.checked["corruption_detections"] == 1

    def test_corruption_surfaced_by_quarantine_is_not_silent(self):
        tr, svc = bare()
        emit(tr, 1.0, "corrupt-detected", "engine", "tA",
             key="k", stage="part-get", kind="payload", part=0)
        emit(tr, 2.0, "quarantine", "engine", "tA",
             key="k", stage="part-get", part=0)
        report = TraceChecker(svc).check()
        assert report.clean, report.render()

    def test_ledger_charge_missing_from_the_trace(self):
        tr, svc = bare()
        ledger = CostLedger()
        tr.install_cost_sink(ledger)
        ledger.charge(0.0, CostCategory.EGRESS, 1.0, "seen")
        ledger.sink = None  # a charge slips past the sink
        ledger.charge(0.0, CostCategory.EGRESS, 0.5, "hidden")
        assert kinds(TraceChecker(svc).check()) == {"cost-gap"}

    def test_charge_attributed_to_an_unknown_task(self):
        tr, svc = bare()
        tr._on_cost(0.0, CostCategory.EGRESS, 0.0, "", "ghost-task")
        assert kinds(TraceChecker(svc).check()) == {"cost-orphan"}


class TestSyntheticLegalTraces:
    def test_full_legal_lifecycle_is_clean(self):
        tr, _ = bare()
        svc = _Svc(tr, {"r": _Rule(_Bucket({"k": _Obj("e1")}))})
        ledger = CostLedger()
        tr.install_cost_sink(ledger)
        acquire(tr, 0.0, "k", "tA", 1, "fresh")
        tr.sim.now = 0.5
        tr.span("plan", "engine", "tA", 0.2, 0.5)
        ledger.charge(0.7, CostCategory.EGRESS, 0.25, "leg", task="tA")
        finalize(tr, 1.0, "tA", "k", fence=1)
        emit(tr, 1.1, "done-marker", "engine", "tA",
             rule="r", key="k", seq=1, etag="e1", op="put")
        visible(tr, 1.2, "tA", "k")
        release(tr, 1.3, "k", "tA", released=True, fence=1)
        report = TraceChecker(svc).check()
        assert report.clean, report.render()
        assert report.checked["visibles"] == 1
        assert "clean" in report.render()

    def test_reentrant_and_takeover_sequences_are_legal(self):
        tr, svc = bare()
        acquire(tr, 0.0, "k", "tA", 1, "fresh")
        acquire(tr, 1.0, "k", "tA", 1, "reentrant")
        acquire(tr, 2.0, "k", "tB", 2, "takeover")
        finalize(tr, 3.0, "tB", "k", fence=2)
        visible(tr, 4.0, "tB", "k")
        release(tr, 5.0, "k", "tB", released=True, fence=2)
        report = TraceChecker(svc).check()
        assert report.clean, report.render()

    def test_fence_generation_restart_is_not_a_zombie(self):
        """Release deletes the lock record, so fences restart at 1 for
        the next generation: an old generation's takeover token must not
        flag a later generation's fence-1 finalize (regression for the
        checker's bounded superseded-fence scan)."""
        tr, svc = bare()
        acquire(tr, 0.0, "k", "tA", 1, "fresh")
        acquire(tr, 1.0, "k", "tB", 2, "takeover")
        finalize(tr, 2.0, "tB", "k", fence=2)
        visible(tr, 3.0, "tB", "k")
        release(tr, 4.0, "k", "tB", released=True, fence=2)
        acquire(tr, 5.0, "k", "tC", 1, "fresh")
        finalize(tr, 6.0, "tC", "k", fence=1, seq=2, etag="e2")
        visible(tr, 7.0, "tC", "k", seq=2)
        release(tr, 8.0, "k", "tC", released=True, fence=1)
        report = TraceChecker(svc).check()
        assert report.clean, report.render()

    def test_non_writing_visibility_needs_no_finalize(self):
        tr, svc = bare()
        visible(tr, 1.0, "t1", "k", kind="already-replicated")
        report = TraceChecker(svc).check()
        assert report.clean, report.render()
