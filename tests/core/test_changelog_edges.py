"""Edge cases of destination-side changelog application."""

import pytest

from repro.core.changelog import ChangelogEntry, ChangelogOp
from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024


def build(seed):
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(profile_samples=5, mc_samples=300)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("aws:us-east-2", "dst")
    rule = svc.add_rule(src, dst)
    return cloud, svc, src, dst, rule


def seed_replicated(cloud, src, dst, key, size):
    blob = Blob.fresh(size)
    src.put_object(key, blob, cloud.now)
    cloud.run()
    assert dst.head(key).etag == blob.etag
    return blob


class TestApplierGuards:
    def test_unknown_op_falls_back_to_full_replication(self):
        cloud, svc, src, dst, rule = build(1201)
        base = seed_replicated(cloud, src, dst, "base", 40 * MB)

        def user_program():
            yield from rule.changelog.record(ChangelogEntry(
                "teleport", "derived", base.etag, (("base", base.etag),)))
            src.put_object("derived", base, cloud.now)

        # The hint's etag must match the new version's etag to be found:
        # 'derived' holds base's blob, so lookup('derived', base.etag) hits.
        cloud.sim.run_process(user_program())
        cloud.run()
        assert dst.head("derived").etag == base.etag
        assert rule.engine.stats["changelog_fallback"] == 1
        assert rule.engine.stats["changelog_applied"] == 0

    def test_reconstruction_mismatch_rolls_back(self):
        """A hint whose reconstruction would not reproduce the version's
        exact bytes is distrusted: the applier deletes its attempt and
        the engine replicates in full."""
        cloud, svc, src, dst, rule = build(1202)
        a = seed_replicated(cloud, src, dst, "a", 10 * MB)
        imposter = Blob.fresh(10 * MB)

        def user_program():
            # A *lying* COPY hint: claims 'fake' copies 'a', but the
            # actual new object holds different content.
            yield from rule.changelog.record(ChangelogEntry(
                ChangelogOp.COPY, "fake", imposter.etag, (("a", a.etag),)))
            src.put_object("fake", imposter, cloud.now)

        cloud.sim.run_process(user_program())
        cloud.run()
        assert dst.head("fake").etag == imposter.etag  # correct content won
        assert rule.engine.stats["changelog_fallback"] == 1

    def test_patch_with_stale_source_version_falls_back(self):
        cloud, svc, src, dst, rule = build(1203)
        base = seed_replicated(cloud, src, dst, "dev", 20 * MB)
        patch = Blob.fresh(1 * MB)
        patched = Blob.concat([base.slice(0, 4 * MB), patch,
                               base.slice(5 * MB, 15 * MB)])

        def user_program():
            yield from rule.changelog.record_patch(
                "dev", base.etag, patched.etag, 4 * MB, 1 * MB)
            src.put_object("dev", patched, cloud.now)
            # The object moves on again immediately: by the time the
            # applier's ranged GET arrives, the hinted version is stale.
            src.put_object("dev", Blob.fresh(20 * MB), cloud.now)

        cloud.sim.run_process(user_program())
        cloud.run()
        assert dst.head("dev").etag == src.head("dev").etag
        assert svc.pending_count() == 0

    def test_append_hint_base_deleted_at_destination(self):
        cloud, svc, src, dst, rule = build(1204)
        base = seed_replicated(cloud, src, dst, "log", 10 * MB)
        # Sabotage: the destination copy disappears (e.g. manual delete).
        dst.delete_object("log", cloud.now, notify=False)
        tail = Blob.fresh(1 * MB)
        grown = Blob.concat([base, tail])

        def user_program():
            yield from rule.changelog.record_append(
                "log", base.etag, grown.etag, base.size, grown.size)
            src.put_object("log", grown, cloud.now)

        cloud.sim.run_process(user_program())
        cloud.run()
        assert dst.head("log").etag == grown.etag
        assert rule.engine.stats["changelog_fallback"] == 1

    def test_hint_for_small_object_still_cheap(self):
        """Changelog applies before any plan is made, so even inline-size
        objects benefit."""
        from repro.simcloud.cost import CostCategory

        cloud, svc, src, dst, rule = build(1205)
        base = seed_replicated(cloud, src, dst, "tiny", 1 * MB)
        egress_before = cloud.ledger.total(CostCategory.EGRESS)

        def user_program():
            version = src.copy_object("tiny", "tiny2", cloud.now, notify=False)
            yield from rule.changelog.record_copy("tiny", base.etag,
                                                  "tiny2", version.etag)
            src.delete_object("tiny2", cloud.now, notify=False)
            src.copy_object("tiny", "tiny2", cloud.now)

        cloud.sim.run_process(user_program())
        cloud.run()
        assert dst.head("tiny2").etag == base.etag
        assert rule.engine.stats["changelog_applied"] == 1
        assert cloud.ledger.total(CostCategory.EGRESS) == egress_before
