"""Regression tests for the zombie-writer consistency hole (§5.2).

A replication task whose lease expires mid-transfer is not necessarily
dead — it may simply be slow (the *zombie writer*).  Once another task
steals the lease and ships a newer version, the zombie must abort its
destination finalize instead of publishing its stale version over the
thief's, and the loss must surface in the engine's stats rather than
vanish in a silent unlock no-op.
"""

from repro.core.audit import ReplicationAuditor
from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import Cloud, CloudProfiles
from repro.simcloud.network import NetworkProfile
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024


def build_throttled(seed):
    """A rule whose src→dst upload leg crawls at 40 Mbps, so a multipart
    transfer of a large object far outlives a short lease."""
    profiles = CloudProfiles(network=NetworkProfile(pair_overrides={
        ("aws", "aws:us-east-1", "aws:us-east-2"): 40.0,
    }))
    cloud = Cloud(seed=seed, profiles=profiles)
    config = ReplicaConfig(profile_samples=4, mc_samples=300)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("aws:us-east-2", "dst")
    rule = svc.add_rule(src, dst)
    rule.engine.forced_plan = (1, "aws:us-east-1")
    rule.engine.locks.lease_s = 3.0
    return cloud, svc, src, dst, rule


def test_zombie_writer_cannot_clobber_the_thief():
    """The canonical interleaving: v1's task stalls past its lease while
    uploading; v2's task steals the lock and replicates; the zombie's
    complete_multipart must abort on the stolen fence."""
    cloud, svc, src, dst, rule = build_throttled(seed=11)
    blob1 = Blob.fresh(64 * MB)
    blob2 = Blob.fresh(MB)
    src.put_object("k", blob1, cloud.now)
    cloud.sim.call_later(
        4.0, lambda: src.put_object("k", blob2, cloud.sim.now))
    cloud.run()

    # The thief's (newer) version survives at the destination.
    assert dst.head("k").etag == blob2.etag
    # The zombie noticed the stolen fence instead of silently no-oping.
    assert rule.engine.stats["lock_lost"] >= 1
    # It cleaned up after itself: no leaked multipart upload, and every
    # measurement closed (the thief's report covers v1's sequencer).
    assert not dst.pending_uploads()
    assert svc.pending_count() == 0
    report = ReplicationAuditor(svc).audit(quiescent=True)
    assert report.clean, report.render()


def test_zombie_abort_leaves_quiescent_state_for_later_writes():
    """After the zombie aborts, subsequent normal writes replicate as if
    nothing happened — the stolen lock was fully released."""
    cloud, svc, src, dst, rule = build_throttled(seed=13)
    blob1 = Blob.fresh(64 * MB)
    blob2 = Blob.fresh(MB)
    src.put_object("k", blob1, cloud.now)
    cloud.sim.call_later(
        4.0, lambda: src.put_object("k", blob2, cloud.sim.now))
    cloud.run()
    blob3 = Blob.fresh(2 * MB)
    src.put_object("k", blob3, cloud.now)
    cloud.run()

    assert dst.head("k").etag == blob3.etag
    assert svc.pending_count() == 0
    report = ReplicationAuditor(svc).audit(quiescent=True)
    assert report.clean, report.render()


def test_failed_abort_is_counted_and_audited_not_swallowed():
    """Best-effort upload aborts used to swallow every exception bare;
    a destination refusing the abort must now surface in the engine's
    ``orphaned_uploads`` stat and as an upload-leak audit finding."""
    cloud, svc, src, dst, rule = build_throttled(seed=17)

    def refusing_abort(upload_id):
        raise RuntimeError("destination refusing requests")

    dst.abort_multipart = refusing_abort
    blob1 = Blob.fresh(64 * MB)
    blob2 = Blob.fresh(MB)
    src.put_object("k", blob1, cloud.now)
    cloud.sim.call_later(
        4.0, lambda: src.put_object("k", blob2, cloud.sim.now))
    cloud.run()

    assert dst.head("k").etag == blob2.etag
    assert rule.engine.stats["orphaned_uploads"] >= 1
    report = ReplicationAuditor(svc).audit(quiescent=True)
    assert report.by_kind("upload-leak"), report.render()
