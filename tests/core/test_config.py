"""Tests for ReplicaConfig."""

import pytest

from repro.core.config import DEFAULT_PART_SIZE, MB, ReplicaConfig


def test_defaults_match_paper():
    cfg = ReplicaConfig()
    assert cfg.part_size == 8 * MB          # §5.1 part-size finding
    assert cfg.percentile == 0.99
    assert not cfg.slo_enabled              # SLO=0: fastest plan (§8.1)


def test_slo_enabled_flag():
    assert ReplicaConfig(slo_seconds=30).slo_enabled
    assert not ReplicaConfig(slo_seconds=0).slo_enabled


def test_parallelism_ladder_is_exponential():
    cfg = ReplicaConfig(max_parallelism=16)
    assert cfg.parallelism_ladder() == [1, 2, 4, 8, 16]


def test_parallelism_ladder_non_power_of_two_cap():
    cfg = ReplicaConfig(max_parallelism=100)
    assert cfg.parallelism_ladder() == [1, 2, 4, 8, 16, 32, 64]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"slo_seconds": -1},
        {"percentile": 0.4},
        {"percentile": 1.0},
        {"part_size": 0},
        {"max_parallelism": 0},
        {"local_threshold": 128 * MB, "distributed_threshold": 64 * MB},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        ReplicaConfig(**kwargs)


def test_default_part_size_constant():
    assert DEFAULT_PART_SIZE == 8 * 1024 * 1024
