"""Tests for the replication consistency auditor."""

import pytest

from repro.core.audit import ReplicationAuditor
from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024


def build(seed):
    cloud = build_default_cloud(seed=seed)
    svc = AReplicaService(cloud, ReplicaConfig(profile_samples=5,
                                               mc_samples=300))
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("aws:us-east-2", "dst")
    rule = svc.add_rule(src, dst)
    return cloud, svc, src, dst, rule


class TestCleanAudits:
    def test_quiescent_rule_audits_clean(self):
        cloud, svc, src, dst, rule = build(1301)
        for i in range(5):
            src.put_object(f"k{i}", Blob.fresh((i + 1) * MB), cloud.now)
        src.delete_object("k0", cloud.now)
        cloud.run()
        report = ReplicationAuditor(svc).audit()
        assert report.clean, report.render()
        assert "clean" in report.render()

    def test_clean_after_distributed_and_aborted_tasks(self):
        cloud, svc, src, dst, rule = build(1302)
        src.put_object("big", Blob.fresh(512 * MB), cloud.now)

        def overwriter():
            yield cloud.sim.sleep(1.5)
            src.put_object("big", Blob.fresh(512 * MB), cloud.now)

        cloud.sim.spawn(overwriter())
        cloud.run()
        report = ReplicationAuditor(svc).audit()
        # In particular: the aborted task's multipart upload was cleaned.
        assert report.by_kind("upload-leak") == []
        assert report.clean, report.render()

    def test_clean_after_chaos_with_recovery(self):
        cloud, svc, src, dst, rule = build(1303)
        cloud.faas("aws:us-east-1").chaos_crash_prob = 0.2
        cloud.faas("aws:us-east-1").chaos_mean_delay_s = 0.5
        for i in range(10):
            src.put_object(f"k{i}", Blob.fresh(4 * MB), cloud.now)
        cloud.run()
        for _ in range(3):
            if svc.redrive_dead_letters() == 0:
                break
            cloud.sim.run(until=cloud.now + 301.0)
            cloud.run()
        report = ReplicationAuditor(svc).audit()
        # Stale locks from dead tasks may remain *observable* but only
        # within their lease; past that the audit must be clean.
        cloud.sim.run(until=cloud.now + 1.0)
        assert report.by_kind("divergence") == [], report.render()
        assert report.by_kind("gap") == [], report.render()


class TestFindings:
    def test_divergence_detected(self):
        cloud, svc, src, dst, rule = build(1304)
        src.put_object("k", Blob.fresh(MB), cloud.now)
        cloud.run()
        dst.delete_object("k", cloud.now, notify=False)  # sabotage
        report = ReplicationAuditor(svc).audit(rule)
        [finding] = report.by_kind("divergence")
        assert finding.key == "k"
        assert "missing" in finding.detail

    def test_lingering_destination_object_detected(self):
        cloud, svc, src, dst, rule = build(1305)
        dst.put_object("ghost", Blob.fresh(MB), cloud.now, notify=False)
        report = ReplicationAuditor(svc).audit(rule)
        assert report.by_kind("divergence")

    def test_upload_leak_detected(self):
        cloud, svc, src, dst, rule = build(1306)
        dst.initiate_multipart("leaky")
        report = ReplicationAuditor(svc).audit(rule)
        [finding] = report.by_kind("upload-leak")
        assert "never completed" in finding.detail

    def test_stale_lock_detected(self):
        cloud, svc, src, dst, rule = build(1307)

        def grab_and_abandon():
            yield from rule.engine.locks.lock("k", "e", 1, owner="dead-task")

        cloud.sim.run_process(grab_and_abandon())
        cloud.sim.run(until=cloud.now + rule.engine.locks.lease_s + 5)
        report = ReplicationAuditor(svc).audit(rule)
        [finding] = report.by_kind("stale-lock")
        assert finding.key == "k"

    def test_measurement_gap_detected(self):
        cloud, svc, src, dst, rule = build(1308)
        src.put_object("k", Blob.fresh(MB), cloud.now)
        # Audit before the simulation runs: the write is still in flight.
        report = ReplicationAuditor(svc).audit(rule)
        assert report.by_kind("gap") or report.by_kind("divergence")

    def test_render_lists_findings(self):
        cloud, svc, src, dst, rule = build(1309)
        dst.initiate_multipart("leaky")
        text = ReplicationAuditor(svc).audit(rule).render()
        assert "finding" in text and "upload-leak" in text
