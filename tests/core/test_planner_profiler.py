"""Tests for the offline profiler and the strategy planner."""

import math

import pytest

from repro.core.config import ReplicaConfig
from repro.core.model import NormalParam, PerformanceModel
from repro.core.planner import StrategyPlanner
from repro.core.profiler import PerformanceProfiler
from repro.simcloud.cloud import build_default_cloud

MB = 1024 * 1024


@pytest.fixture(scope="module")
def profiled():
    """One profiled cloud shared by this module's read-only tests."""
    cloud = build_default_cloud(seed=21)
    config = ReplicaConfig()
    model = PerformanceModel(chunk_size=config.part_size, seed=0)
    profiler = PerformanceProfiler(cloud, model, samples=8)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("azure:eastus", "dst")
    profiler.ensure_path("aws:us-east-1", src, dst)
    profiler.ensure_path("azure:eastus", src, dst)
    return cloud, config, model, profiler, src, dst


class TestProfiler:
    def test_paths_installed(self, profiled):
        _, _, model, _, src, dst = profiled
        assert model.has_path(("aws:us-east-1", src.region.key, dst.region.key))
        assert model.has_path(("azure:eastus", src.region.key, dst.region.key))

    def test_loc_params_sane(self, profiled):
        _, _, model, _, _, _ = profiled
        lp = model.loc_params["aws:us-east-1"]
        assert 0.002 < lp.invoke.mean < 0.1          # I: tens of ms
        assert 0.05 < lp.startup.mean < 2.0          # D: sub-second-ish

    def test_path_params_sane(self, profiled):
        _, _, model, _, src, dst = profiled
        pp = model.path_params[("aws:us-east-1", src.region.key, dst.region.key)]
        # An 8 MB chunk at a few hundred Mbps: tenths of a second.
        assert 0.05 < pp.chunk.mean < 2.0
        assert pp.chunk_distributed.mean > 0
        assert pp.client_startup.mean >= 0

    def test_distributed_chunk_includes_kv_overhead(self, profiled):
        """C' >= C on average: same transfer plus two KV accesses."""
        _, _, model, _, src, dst = profiled
        pp = model.path_params[("aws:us-east-1", src.region.key, dst.region.key)]
        assert pp.chunk_distributed.mean > pp.chunk.mean * 0.8

    def test_ensure_path_idempotent(self, profiled):
        _, _, model, profiler, src, dst = profiled
        count = len(profiler.profiled_paths)
        profiler.ensure_path("aws:us-east-1", src, dst)
        assert len(profiler.profiled_paths) == count

    def test_probe_objects_cleaned_up(self, profiled):
        _, _, _, _, src, dst = profiled
        assert not [k for k in src.keys() if "probe" in k]
        assert not [k for k in dst.keys() if "probe" in k]

    def test_too_few_samples_rejected(self, profiled):
        cloud, _, model, _, _, _ = profiled
        with pytest.raises(ValueError):
            PerformanceProfiler(cloud, model, samples=1)

    def test_variability_captured_in_std(self, profiled):
        """The whole point of distribution-awareness: non-zero spread."""
        _, _, model, _, src, dst = profiled
        pp = model.path_params[("azure:eastus", src.region.key, dst.region.key)]
        assert pp.chunk.std > 0


class TestPlanner:
    @pytest.fixture()
    def planner(self, profiled):
        _, config, model, _, _, _ = profiled
        return StrategyPlanner(model, config)

    def test_small_object_single_inline_plan(self, planner):
        plan = planner.fastest(1 * MB, "aws:us-east-1", "azure:eastus")
        assert plan.n == 1
        assert plan.inline           # orchestrator handles it locally
        assert plan.loc_key == "aws:us-east-1"

    def test_large_object_distributed_plan(self, planner):
        plan = planner.fastest(1024 * MB, "aws:us-east-1", "azure:eastus")
        assert plan.n >= 8
        assert plan.distributed

    def test_loose_slo_prefers_fewer_functions(self, planner):
        tight = planner.generate(1024 * MB, "aws:us-east-1", "azure:eastus",
                                 slo_remaining=10.0)
        loose = planner.generate(1024 * MB, "aws:us-east-1", "azure:eastus",
                                 slo_remaining=600.0)
        assert loose.n <= tight.n
        assert loose.compliant

    def test_compliant_plan_meets_budget(self, planner):
        plan = planner.generate(128 * MB, "aws:us-east-1", "azure:eastus",
                                slo_remaining=60.0)
        assert plan.compliant
        assert plan.predicted_s <= 60.0

    def test_impossible_slo_returns_fastest_noncompliant(self, planner):
        plan = planner.generate(1024 * MB, "aws:us-east-1", "azure:eastus",
                                slo_remaining=0.001)
        assert not plan.compliant

    def test_negative_budget_handled(self, planner):
        """Notification alone blew the SLO: still returns a plan."""
        plan = planner.generate(1 * MB, "aws:us-east-1", "azure:eastus",
                                slo_remaining=-5.0)
        assert plan.n >= 1

    def test_parallelism_capped_by_part_count(self, planner, profiled):
        _, config, _, _, _, _ = profiled
        plan = planner.fastest(80 * MB, "aws:us-east-1", "azure:eastus")
        assert plan.n <= math.ceil(80 * MB / config.part_size)

    def test_no_distribution_below_threshold_in_slo_mode(self, planner,
                                                         profiled):
        """With an SLO to meet, sub-threshold objects stay on a single
        (cheaper) function; fastest mode may still parallelize them."""
        _, config, _, _, _, _ = profiled
        plan = planner.generate(config.distributed_threshold - 1,
                                "aws:us-east-1", "azure:eastus",
                                slo_remaining=120.0)
        assert plan.n == 1
        assert plan.compliant

    def test_fastest_mode_may_parallelize_medium_objects(self, planner,
                                                         profiled):
        _, config, _, _, _, _ = profiled
        plan = planner.fastest(config.distributed_threshold - 1,
                               "aws:us-east-1", "azure:eastus")
        assert plan.n >= 1  # allowed to exceed 1 (bursts of medium objects)

    def test_unprofiled_path_raises(self, planner):
        with pytest.raises(RuntimeError):
            planner.fastest(MB, "gcp:us-west1", "gcp:europe-west6")

    def test_dynamic_loc_choice_can_pick_either_side(self, profiled):
        """Fig 20: the planner evaluates both source- and destination-side
        execution and the choice is data-driven, not hard-coded."""
        _, config, model, _, src, dst = profiled
        planner = StrategyPlanner(model, config)
        plan = planner.fastest(128 * MB, src.region.key, dst.region.key)
        assert plan.loc_key in (src.region.key, dst.region.key)
        # With AWS's faster, stabler links the model should prefer AWS
        # (the paper observes AReplica consistently runs on AWS).
        assert plan.loc_key == "aws:us-east-1"

    def test_plans_generated_counter(self, planner):
        before = planner.plans_generated
        planner.fastest(MB, "aws:us-east-1", "azure:eastus")
        assert planner.plans_generated == before + 1
