"""Planned-operations lifecycle drills: evacuation, restart, switchover.

Each procedure runs against a *live* loaded service and must leave the
system provably intact: convergence, quiescent audit, and the trace
oracle (including the switchover-discipline and cordon-discipline
invariants) all clean.  The quiescent-recovery tests cover the two
crash-residue reapers that back the drills: stranded-lock reclaim in
``run_to_convergence`` and abandoned-upload reaping in the
anti-entropy scanner.
"""

import pytest

from repro.core.audit import ReplicationAuditor
from repro.core.config import ReplicaConfig
from repro.core.invariants import TraceChecker
from repro.core.lifecycle import SCENARIOS, OperationsRunner
from repro.core.repair import AntiEntropyScanner
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

pytestmark = pytest.mark.lifecycle

KB = 1024
MB = 1024 * 1024
SRC = "aws:us-east-1"
DST = "azure:eastus"


def build(seed, **cfg):
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(profile_samples=4, mc_samples=300,
                           tracing_enabled=True, **cfg)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket(SRC, "src")
    dst = cloud.bucket(DST, "dst")
    rule = svc.add_rule(src, dst)
    return cloud, svc, src, dst, rule


def spawn_workload(cloud, src, n=120, mean_gap_s=7.5):
    """Seeded put stream spread over ~n*mean_gap_s simulated seconds, so
    live traffic keeps arriving before, during, and after a maintenance
    window scheduled a few minutes in."""
    rng = cloud.rngs.stream("lifecycle-test-workload")

    def gen():
        for i in range(n):
            yield cloud.sim.sleep(mean_gap_s * (0.5 + rng.random()))
            size = int(64 * KB + rng.random() * 2 * MB)
            src.put_object(f"obj{i % 12}", Blob.fresh(size), cloud.now)

    cloud.sim.spawn(gen(), name="lifecycle-test-workload")


def assert_system_intact(svc, rule):
    report = svc.run_to_convergence()
    assert report.converged, report.render()
    audit = ReplicationAuditor(svc).audit(quiescent=True)
    assert audit.clean, [str(f) for f in audit.findings]
    trace = TraceChecker(svc).check()
    assert trace.clean, [str(f) for f in trace.findings]
    return report, trace


class TestEvacuation:
    def test_evacuation_drains_migrates_and_readmits(self):
        cloud, svc, src, dst, rule = build(seed=810)
        spawn_workload(cloud, src)
        runner = OperationsRunner(svc, rule.rule_id)
        runner.schedule("evacuate", 300.0)
        cloud.run()
        report, trace = assert_system_intact(svc, rule)

        assert len(runner.reports) == 1
        proc = runner.reports[0]
        assert proc.scenario == "evacuate"
        assert proc.deadline_met, "drain missed its deadline"
        stats = rule.engine.stats
        # FaaS + KV + store cordons were all applied.
        assert stats["cordons"] >= 3
        # Both evacuation paths ran: work either failed over to the
        # surviving platform or parked into the durable backlog, and
        # everything re-admitted once the cordon lifted.
        assert proc.migrated + stats["parked"] > 0
        assert stats["migrated_tasks"] == proc.migrated
        assert svc.backlog_count() == 0
        # The cordon-discipline invariant saw the window.
        assert trace.checked.get("cordon_windows", 0) >= 1

    def test_evacuation_exposes_backlog_peak_and_drain_counts(self):
        cloud, svc, src, dst, rule = build(seed=811)
        spawn_workload(cloud, src)
        runner = OperationsRunner(svc, rule.rule_id)
        runner.schedule("evacuate", 300.0)
        cloud.run()
        report = svc.run_to_convergence()
        assert report.converged, report.render()
        stats = rule.engine.stats
        if stats["parked"] > 0:
            assert report.backlog_peak > 0
            assert report.drained == stats["drained"]
        summary = svc.summary()
        assert summary["parked_backlog_peak"] == report.backlog_peak
        assert summary["drained_tasks"] == report.drained
        assert stats["drained_parts"] >= 0


class TestRollingRestart:
    def test_rolling_restart_checkpoints_and_restores(self):
        cloud, svc, src, dst, rule = build(seed=820)
        spawn_workload(cloud, src)
        old_engine = rule.engine
        runner = OperationsRunner(svc, rule.rule_id)
        runner.schedule("rolling", 300.0)
        cloud.run()
        assert_system_intact(svc, rule)

        assert rule.engine is not old_engine, "engine was not rebuilt"
        proc = runner.reports[0]
        assert proc.scenario == "rolling"
        stats = rule.engine.stats
        # Counters survived the restart by adoption, not by reset.
        assert stats["checkpoints"] >= 1
        assert stats["tasks"] > 0
        assert proc.restored >= 0 and proc.remirrored >= 0

    def test_rebuilt_engine_still_replicates(self):
        cloud, svc, src, dst, rule = build(seed=821)
        spawn_workload(cloud, src, n=60)
        runner = OperationsRunner(svc, rule.rule_id)
        runner.schedule("rolling", 200.0)
        cloud.run()
        # Traffic that arrived after the rebuild landed on the new
        # engine and reached the destination.
        src.put_object("after-restart", Blob.fresh(256 * KB), cloud.now)
        cloud.run()
        assert_system_intact(svc, rule)
        assert dst.head("after-restart").etag == src.head("after-restart").etag


class TestSwitchover:
    def test_switchover_moves_orchestration_under_load(self):
        cloud, svc, src, dst, rule = build(seed=830)
        spawn_workload(cloud, src)
        runner = OperationsRunner(svc, rule.rule_id)
        runner.schedule("switchover", 300.0)
        cloud.run()
        report, trace = assert_system_intact(svc, rule)

        proc = runner.reports[0]
        assert proc.scenario == "switchover"
        assert proc.deadline_met
        stats = rule.engine.stats
        assert stats["switchovers"] == 1
        # Orchestrations really moved to the destination platform...
        assert proc.migrated > 0
        # ...and the switchover-discipline invariant audited the epochs.
        assert trace.checked.get("finalize_epochs", 0) > 0


class TestRunnerContract:
    def test_unknown_scenario_rejected(self):
        cloud, svc, src, dst, rule = build(seed=840)
        runner = OperationsRunner(svc, rule.rule_id)
        with pytest.raises(ValueError, match="unknown scenario"):
            runner.schedule("explode", 10.0)
        assert set(SCENARIOS) == {"evacuate", "rolling", "switchover"}

    def test_health_tracking_required(self):
        cloud, svc, src, dst, rule = build(seed=841, health_enabled=False)
        with pytest.raises(ValueError, match="health"):
            OperationsRunner(svc, rule.rule_id)

    def test_drain_deadline_validated(self):
        cloud, svc, src, dst, rule = build(seed=842)
        with pytest.raises(ValueError):
            OperationsRunner(svc, rule.rule_id, drain_deadline_s=0.0)

    def test_idle_runner_is_invisible(self):
        """A constructed-but-unscheduled runner draws nothing: no RNG
        stream, no events, no KV traffic (the byte-determinism
        guarantee for lifecycle-off runs)."""
        cloud, svc, src, dst, rule = build(seed=843)
        runner = OperationsRunner(svc, rule.rule_id)
        assert runner._rng is None
        src.put_object("k", Blob.fresh(1 * MB), cloud.now)
        cloud.run()
        assert runner.reports == []
        assert runner._rng is None
        assert rule.engine.stats["cordons"] == 0


class TestQuiescentRecovery:
    def test_stranded_lock_is_reclaimed_at_convergence(self):
        """A holder that dies between finalize and UNLOCK strands the
        lock record and any pending version registered on it; the
        convergence loop must steal the lease and converge the key."""
        cloud, svc, src, dst, rule = build(seed=850)
        src.put_object("k", Blob.fresh(512 * KB), cloud.now)
        cloud.run()
        svc.run_to_convergence()
        # Overwrite the source, then forge the crash residue: a lock
        # record owned by a dead task with the new version pending.
        src.put_object("k", Blob.fresh(768 * KB), cloud.now, notify=False)
        current = src.head("k")
        engine = rule.engine
        engine._lock_table._items["lock:k"] = {
            "owner": f"{rule.rule_id}:k:1:created", "held_etag": "dead",
            "held_seq": 1, "acquired_at": cloud.now, "fence": 7,
            "pending_etag": current.etag, "pending_seq": current.sequencer,
        }
        report = svc.run_to_convergence()
        assert report.converged, report.render()
        assert report.reclaimed_locks == 1
        assert engine._lock_table.peek("lock:k") is None
        assert dst.head("k").etag == current.etag

    def test_scanner_reaps_abandoned_uploads(self):
        cloud, svc, src, dst, rule = build(seed=851)
        src.put_object("k", Blob.fresh(256 * KB), cloud.now)
        cloud.run()
        svc.run_to_convergence()
        dst.initiate_multipart("orphan")
        assert dst.pending_uploads()
        scanner = AntiEntropyScanner(svc)
        detect_only = scanner.scan(rule, redrive=False)
        assert detect_only.aborted_uploads == 0, "reap must be opt-in"
        assert dst.pending_uploads()
        report = scanner.scan(rule, redrive=False, reap_uploads=True)
        assert report.aborted_uploads == 1
        assert not dst.pending_uploads()
        audit = ReplicationAuditor(svc).audit(quiescent=True)
        assert audit.clean, [str(f) for f in audit.findings]
