"""Unit coverage for the trace replayer and workflow timers.

Both modules sit on the evaluation's critical path (the Fig 23 replay
and SLO-bounded batching) but were previously exercised only through
end-to-end scenarios; these tests pin their contracts directly.
"""

import numpy as np
import pytest

from repro.simcloud import workflow as workflow_mod
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.cost import CostCategory, CostLedger
from repro.simcloud.sim import Simulator
from repro.simcloud.workflow import WorkflowTimers
from repro.traces.ibm_cos import OP_DELETE, OP_PUT, TraceBatch, TraceRequest
from repro.traces.replay import TraceReplayer

KB = 1024

REQUESTS = [
    TraceRequest(0.0, "PUT", "k1", 100 * KB),
    TraceRequest(60.0, "PUT", "k2", 40 * KB),
    TraceRequest(120.0, "DELETE", "k1", 0),
    TraceRequest(120.0, "DELETE", "k3", 0),   # never written: skipped
]


def _cloud_bucket(seed=5):
    cloud = build_default_cloud(seed=seed)
    return cloud, cloud.bucket("aws:us-east-1", "replay-src")


def _batch_form():
    return [TraceBatch(
        times=np.array([r.time for r in REQUESTS], dtype=np.float64),
        ops=np.array([OP_PUT if r.op == "PUT" else OP_DELETE
                      for r in REQUESTS], dtype=np.uint8),
        keys=[r.key for r in REQUESTS],
        sizes=np.array([r.size for r in REQUESTS], dtype=np.int64),
    )]


class TestTraceReplayer:
    def test_time_scale_must_be_positive(self):
        cloud, bucket = _cloud_bucket()
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError):
                TraceReplayer(cloud, bucket, time_scale=bad)

    def test_unknown_op_raises(self):
        cloud, bucket = _cloud_bucket()
        replayer = TraceReplayer(cloud, bucket)
        with pytest.raises(ValueError, match="unknown trace op"):
            list(replayer.replay([TraceRequest(0.0, "COPY", "k", 1)]))

    def test_request_replay_counters_and_bucket_state(self):
        cloud, bucket = _cloud_bucket()
        stats = TraceReplayer(cloud, bucket).replay_all(REQUESTS)
        assert (stats.puts, stats.deletes, stats.skipped_deletes) == (2, 1, 1)
        assert stats.requests == 3  # skipped deletes are not applied
        assert stats.bytes_written == 140 * KB
        assert stats.first_time == 0.0
        assert stats.last_time == 120.0
        assert "k1" not in bucket and "k2" in bucket

    def test_time_scale_compresses_the_schedule(self):
        cloud, bucket = _cloud_bucket()
        stats = TraceReplayer(cloud, bucket, time_scale=0.5).replay_all(
            REQUESTS)
        assert stats.last_time == 60.0
        assert stats.requests == 3

    def test_batch_path_matches_request_path(self):
        cloud_a, bucket_a = _cloud_bucket(seed=5)
        by_request = TraceReplayer(cloud_a, bucket_a).replay_all(REQUESTS)
        cloud_b, bucket_b = _cloud_bucket(seed=5)
        by_batch = TraceReplayer(cloud_b, bucket_b).replay_all_batches(
            _batch_form())
        assert by_request == by_batch
        assert sorted(bucket_a.keys()) == sorted(bucket_b.keys())

    def test_batch_row_view_round_trips(self):
        rows = list(_batch_form()[0].requests())
        assert rows == REQUESTS


class TestWorkflowTimers:
    def test_timers_fire_in_order_and_bill_per_transition(self):
        sim, ledger = Simulator(), CostLedger()
        timers = WorkflowTimers(sim, ledger)
        fired = []
        timers.schedule_at(5.0, lambda: fired.append("b"))
        timers.schedule_at(1.0, lambda: fired.append("a"))
        timers.schedule_after(10.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert timers.scheduled == 3
        expected = 3 * workflow_mod._COST_PER_TIMER
        assert ledger.total(CostCategory.WORKFLOW) == pytest.approx(expected)
        assert ledger.total() == pytest.approx(expected)

    def test_past_deadline_clamps_to_now(self):
        sim, ledger = Simulator(), CostLedger()
        timers = WorkflowTimers(sim, ledger)
        fired = []

        def proc():
            yield sim.sleep(10.0)
            timers.schedule_at(3.0, lambda: fired.append(sim.now))

        sim.spawn(proc())
        sim.run()
        assert fired == [10.0]

    def test_negative_delay_clamps_to_zero(self):
        sim, ledger = Simulator(), CostLedger()
        timers = WorkflowTimers(sim, ledger)
        fired = []
        timers.schedule_after(-5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.0]
        assert timers.scheduled == 1
