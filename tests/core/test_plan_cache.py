"""Plan-cache correctness: memoization must never serve stale plans.

The planner memoizes scored Algorithm-3 candidate tables per
``(src, dst, percentile, chunk count, parallelism cap, inline)`` key
and subscribes to the model's invalidation feed.  These tests pin the
contract: warm queries are cache hits with identical results, drift
corrections (``scale_path`` / ``set_path_params``) yield *fresh* plans,
location-parameter changes clear everything, and the model's own
Monte-Carlo cache does not leak entries across invalidations.
"""

import math

import pytest
from scipy import stats as scipy_stats

from repro.core.config import ReplicaConfig
from repro.core.model import (
    LocParams,
    NormalParam,
    PathParams,
    PerformanceModel,
    _norm_ppf,
)
from repro.core.planner import StrategyPlanner

SRC = "aws:us-east-1"
DST = "azure:eastus"
MB = 1024**2


def make_model_and_planner(**cfg):
    config = ReplicaConfig(**cfg)
    model = PerformanceModel(chunk_size=config.part_size,
                             mc_samples=config.mc_samples,
                             gumbel_threshold=config.gumbel_threshold, seed=3)
    for i, loc in enumerate((SRC, DST)):
        model.set_loc_params(loc, LocParams(
            invoke=NormalParam(0.05 + 0.01 * i, 0.01),
            startup=NormalParam(0.25, 0.05),
            postponement=NormalParam(0.4, 0.1),
        ))
        model.set_path_params((loc, SRC, DST), PathParams(
            client_startup=NormalParam(0.6, 0.12),
            chunk=NormalParam(0.35 + 0.05 * i, 0.07),
            chunk_distributed=NormalParam(0.45, 0.09),
        ))
    return model, StrategyPlanner(model, config)


class TestWarmQueries:
    def test_repeat_query_hits_cache_with_identical_plan(self):
        model, planner = make_model_and_planner()
        first = planner.generate(64 * MB, SRC, DST, slo_remaining=30.0)
        misses = planner.cache.misses
        second = planner.generate(64 * MB, SRC, DST, slo_remaining=30.0)
        assert planner.cache.misses == misses
        assert planner.cache.hits >= 1
        assert second == first

    def test_same_chunk_count_shares_an_entry(self):
        model, planner = make_model_and_planner()
        planner.generate(3 * MB, SRC, DST, slo_remaining=30.0)
        entries = len(planner.cache)
        # Different byte size, same ceil(size / chunk_size) bucket.
        planner.generate(3 * MB + 17, SRC, DST, slo_remaining=30.0)
        assert len(planner.cache) == entries

    def test_different_slo_budgets_share_an_entry(self):
        model, planner = make_model_and_planner()
        loose = planner.generate(512 * MB, SRC, DST, slo_remaining=1e9)
        entries = len(planner.cache)
        tight = planner.generate(512 * MB, SRC, DST, slo_remaining=0.2)
        assert len(planner.cache) == entries
        # Selection replays per budget: a hopeless budget falls back to
        # the fastest plan, a loose one picks the cheapest (n=1 ladder
        # start), so compliance must differ.
        assert loose.compliant and not tight.compliant


class TestDriftInvalidation:
    def test_scale_path_yields_fresh_plans(self):
        model, planner = make_model_and_planner()
        before = planner.generate(256 * MB, SRC, DST, slo_remaining=30.0)
        # Path got 8x slower (drift); the cached table must be dropped:
        # the same query now sees the rescaled parameters (the planner
        # escalates parallelism and/or blows the prediction — either
        # way the served plan cannot be the cached one).
        for loc in (SRC, DST):
            model.scale_path((loc, SRC, DST), 8.0)
        after = planner.generate(256 * MB, SRC, DST, slo_remaining=30.0)
        assert (after.n, after.predicted_s) != (before.n, before.predicted_s)
        assert after.n > before.n or after.predicted_s > before.predicted_s

    def test_set_path_params_yields_fresh_plans(self):
        model, planner = make_model_and_planner()
        before = planner.generate(256 * MB, SRC, DST, slo_remaining=30.0)
        for loc in (SRC, DST):
            model.set_path_params((loc, SRC, DST), PathParams(
                client_startup=NormalParam(0.6, 0.12),
                chunk=NormalParam(3.5, 0.7),
                chunk_distributed=NormalParam(4.5, 0.9),
            ))
        after = planner.generate(256 * MB, SRC, DST, slo_remaining=30.0)
        assert (after.n, after.predicted_s) != (before.n, before.predicted_s)
        assert after.n > before.n or after.predicted_s > before.predicted_s

    def test_loc_params_change_clears_everything(self):
        model, planner = make_model_and_planner()
        planner.fastest(8 * MB, SRC, DST)
        planner.generate(256 * MB, SRC, DST, slo_remaining=30.0)
        assert len(planner.cache) > 0 and planner._fastest_plans
        model.set_loc_params(SRC, LocParams(
            invoke=NormalParam(0.5, 0.1),
            startup=NormalParam(2.5, 0.5),
            postponement=NormalParam(0.4, 0.1),
        ))
        assert len(planner.cache) == 0
        assert not planner._fastest_plans

    def test_fastest_memo_refreshes_after_drift(self):
        model, planner = make_model_and_planner()
        before = planner.fastest(256 * MB, SRC, DST)
        for loc in (SRC, DST):
            model.scale_path((loc, SRC, DST), 4.0)
        after = planner.fastest(256 * MB, SRC, DST)
        assert after.predicted_s > before.predicted_s * 2.0


class TestMonteCarloCacheHygiene:
    def test_mc_cache_entries_dropped_on_path_invalidation(self):
        model, planner = make_model_and_planner()
        planner.generate(256 * MB, SRC, DST, slo_remaining=30.0)
        assert model._mc_cache
        path = (SRC, SRC, DST)
        model.scale_path(path, 2.0)
        assert all(k[:3] != path for k in model._mc_cache)

    def test_mc_cache_does_not_grow_across_repeated_invalidations(self):
        model, planner = make_model_and_planner()

        def fill():
            for size in (4 * MB, 64 * MB, 256 * MB, 1024 * MB):
                planner.generate(size, SRC, DST, slo_remaining=30.0)

        fill()
        steady = len(model._mc_cache)
        for _ in range(5):
            for loc in (SRC, DST):
                model.scale_path((loc, SRC, DST), 1.1)
            fill()
            assert len(model._mc_cache) <= steady


class TestNormPpf:
    """The scipy-free inverse normal CDF must match scipy to ~1e-9."""

    @pytest.mark.parametrize("p", [
        1e-9, 1e-6, 0.001, 0.024, 0.0243, 0.5, 0.9, 0.95, 0.99, 0.999,
        0.9999, 1 - 1e-6, 1 - 1e-9,
    ])
    def test_matches_scipy(self, p):
        assert _norm_ppf(p) == pytest.approx(
            float(scipy_stats.norm.ppf(p)), abs=1e-9, rel=1e-9)

    def test_extremes_and_domain(self):
        assert _norm_ppf(0.0) == -math.inf
        assert _norm_ppf(1.0) == math.inf
        with pytest.raises(ValueError):
            _norm_ppf(1.5)
        with pytest.raises(ValueError):
            _norm_ppf(-0.1)
