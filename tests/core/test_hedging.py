"""Speculative straggler cloning (hedging) suites.

Covers the hedged-part race end to end (clones fired, first-writer-wins
settlement, every hedge resolved, cost charged to the dedicated ledger
line), the fail-safe direction of the deadline signal (no/NaN signal
means *never hedge*), the determinism contract (hedging off leaves
seeded runs byte-identical and fires nothing), the part-pool ownership
fixes that the hedged race leans on (leased ``try_reclaim`` rewins,
idempotent quarantine marking), fusion eligibility, and a seeded
chaos-storm property: with hedging on, storms at seeds 0-2 converge
with the audit, trace oracle, and deep scrub all clean.
"""

import itertools
import json

import pytest
from hypothesis import Phase, example, given, settings
from hypothesis import strategies as st

from repro.analysis.stats import latest_window_percentile, percentile
from repro.core.audit import ReplicationAuditor
from repro.core.config import ReplicaConfig
from repro.core.invariants import TraceChecker
from repro.core.partpool import PartPool
from repro.core.repair import AntiEntropyScanner
from repro.core.service import AReplicaService
from repro.simcloud import objectstore
from repro.simcloud.chaos import ChaosConfig
from repro.simcloud.cloud import build_default_cloud
from repro.traces.ibm_cos import IbmCosTraceGenerator
from repro.traces.replay import TraceReplayer

pytestmark = pytest.mark.hedge

MB = 1024**2

#: The aggressive hedging profile the drills and benchmark use: clone
#: anything that overruns the windowed P90, up to twice per part.
HEDGE_KNOBS = dict(hedging_enabled=True, hedge_deadline_quantile=0.9,
                   max_clones_per_part=2, hedge_min_part_bytes=1)


def _service(seed: int, tracing: bool = False, **config_kwargs):
    cloud = build_default_cloud(seed=seed)
    svc = AReplicaService(cloud, ReplicaConfig(
        profile_samples=5, tracing_enabled=tracing, **config_kwargs))
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("azure:eastus", "dst")
    rule = svc.add_rule(src, dst)
    return cloud, svc, src, rule


def _stalled_replay(cloud, svc, src, seed: int, requests: int,
                    wan_stall_prob: float = 0.15, **chaos_kwargs):
    """Replay a seeded busy-hour segment under WAN stalls, then drain."""
    cloud.apply_chaos(ChaosConfig(wan_stall_prob=wan_stall_prob,
                                  **chaos_kwargs))
    trace = IbmCosTraceGenerator(seed=seed).busy_hour(
        total_requests=requests)
    TraceReplayer(cloud, src).replay_all(trace)
    cloud.apply_chaos(None)
    return svc.run_to_convergence()


# -- part-pool ownership (the primitives the hedged race settles on) ---------


class TestTryReclaimOwnership:
    def test_same_owner_rewin_requires_lease_expiry(self):
        """Regression: the old unconditional same-owner re-entrancy
        clause let a superseded former owner win a reclaim back while
        the incumbent lease was live, racing two writers on one part.
        A rewin — same owner or not — must wait out the lease."""
        cloud = build_default_cloud(seed=9)
        table = cloud.kv_table("aws:us-east-1", "state")
        pool = PartPool(table, "t", 3)

        def main():
            first = yield from pool.try_reclaim(0, "w0", 100.0, lease_s=60.0)
            same_owner_live = yield from pool.try_reclaim(0, "w0", 130.0,
                                                          lease_s=60.0)
            other_owner_live = yield from pool.try_reclaim(0, "w1", 130.0,
                                                           lease_s=60.0)
            after_expiry = yield from pool.try_reclaim(0, "w1", 161.0,
                                                       lease_s=60.0)
            return first, same_owner_live, other_owner_live, after_expiry

        assert cloud.sim.run_process(main()) == (True, False, False, True)

    def test_quarantine_marking_is_idempotent_per_part(self):
        """A hedged clone and its primary can both burn the retransfer
        budget on the same poisoned range; exactly one marker counts."""
        cloud = build_default_cloud(seed=9)
        table = cloud.kv_table("aws:us-east-1", "state")
        pool = PartPool(table, "t", 4)

        def main():
            yield from pool.create()
            primary = yield from pool.mark_quarantined(2)
            clone = yield from pool.mark_quarantined(2)
            retry = yield from pool.mark_quarantined(2)
            listed = yield from pool.quarantined_parts()
            return primary, clone, retry, listed

        assert cloud.sim.run_process(main()) == (True, False, False, [2])


# -- deadline signal fail-safe ------------------------------------------------


class TestHedgeDeadlineFailsafe:
    def test_empty_percentile_is_nan_and_window_maps_it_to_none(self):
        # The raw percentile of nothing is NaN — and NaN compares False
        # in every direction, so it must never reach the overrun check.
        # The windowed accessor owns the translation to the explicit
        # None sentinel.
        assert percentile([], 0.95) != percentile([], 0.95)  # NaN
        assert latest_window_percentile([], [], 0.95, 300.0, 0.0) is None

    def test_cold_engine_has_no_deadline(self):
        _, _, _, rule = _service(0, **HEDGE_KNOBS)
        assert rule.engine._hedge_deadline(1000.0) is None

    def test_below_min_samples_has_no_deadline(self):
        _, _, _, rule = _service(0, **HEDGE_KNOBS, hedge_min_samples=8)
        for i in range(7):
            rule.engine._hedge_samples.record(990.0 + i, 1.0)
        assert rule.engine._hedge_deadline(1000.0) is None
        rule.engine._hedge_samples.record(997.5, 1.0)
        assert rule.engine._hedge_deadline(1000.0) is not None

    def test_aged_out_window_has_no_deadline(self):
        _, _, _, rule = _service(0, **HEDGE_KNOBS, hedge_min_samples=4)
        for i in range(8):
            rule.engine._hedge_samples.record(float(i), 1.0)
        assert rule.engine._hedge_deadline(10.0) is not None
        assert rule.engine._hedge_deadline(1000.0) is None

    def test_no_deadline_means_never_hedge_end_to_end(self):
        """Direction assertion: a missing deadline fails *closed*.  An
        unreachable sample floor keeps the sentinel None for the whole
        run — zero clones, even with hedging on and stalls injected."""
        cloud, svc, src, rule = _service(0, **dict(HEDGE_KNOBS,
                                                   hedge_min_samples=10**9))
        conv = _stalled_replay(cloud, svc, src, seed=0, requests=150)
        assert conv.converged
        assert rule.engine.stats["hedges"] == 0


# -- fusion eligibility -------------------------------------------------------


class TestFusionEligibility:
    def test_hedging_disqualifies_fused_transfers(self):
        """The hedge monitor samples transfer progress at instants the
        fused data path collapses into one kernel event; a task that
        can hedge must never fuse."""
        _, _, _, fused = _service(0, fuse_small_transfers=True)
        assert fused.engine._fusion_ok()
        _, _, _, hedged = _service(0, fuse_small_transfers=True,
                                   **HEDGE_KNOBS)
        assert not hedged.engine._fusion_ok()


# -- end-to-end hedged race ---------------------------------------------------


class TestHedgedReplication:
    def test_stalled_replay_hedges_and_accounts(self):
        cloud, svc, src, rule = _service(0, tracing=True, **HEDGE_KNOBS)
        conv = _stalled_replay(cloud, svc, src, seed=0, requests=300)
        assert conv.converged and svc.pending_count() == 0

        stats = rule.engine.stats
        assert stats["hedges"] > 0
        assert stats["hedge_wins"] > 0
        # Every hedge resolves exactly one way.
        assert stats["hedges"] == (stats["hedge_wins"]
                                   + stats["hedge_losses"]
                                   + stats["hedge_cancelled"])

        # The trace narrates the same story the counters tell ...
        starts = [e for e in svc.tracer.events if e.name == "hedge-start"]
        resolved = [e for e in svc.tracer.events if e.name == "hedge-resolved"]
        assert len(starts) == stats["hedges"] == len(resolved)
        outcomes = {e.attrs["outcome"] for e in resolved}
        assert outcomes <= {"won", "lost", "cancelled"}

        # ... the checker's hedge-discipline invariants agree ...
        report = TraceChecker(svc).check()
        assert report.clean, [str(f) for f in report.findings]
        assert report.checked["hedges"] == stats["hedges"]

        # ... and every clone attempt hit the cloning-aware ledger line.
        hedge_costs = [c for c in svc.tracer.costs
                       if c.category == "hedge_clones"]
        assert len(hedge_costs) == stats["hedges"]
        assert all(c.amount > 0 for c in hedge_costs)

        assert ReplicationAuditor(svc).audit(quiescent=True).clean


# -- determinism contract -----------------------------------------------------


def _traced_export_bytes(seed: int, path, hedging: bool):
    # Blob content ids come from one process-global counter; reset it so
    # two in-process runs mint identical ids (same trick as the golden
    # determinism suite).
    objectstore._fresh_counter = itertools.count()
    config_kwargs = dict(HEDGE_KNOBS) if hedging else {}
    cloud, svc, src, rule = _service(seed, tracing=True,
                                     mc_samples=300, **config_kwargs)
    trace = IbmCosTraceGenerator(seed=seed).busy_hour(total_requests=120)
    TraceReplayer(cloud, src).replay_all(trace)
    svc.run_to_convergence()
    svc.tracer.export_chrome(str(path))
    return path.read_bytes(), rule.engine.stats


class TestHedgingDeterminismContract:
    def test_hedging_off_is_byte_identical_and_fires_nothing(self, tmp_path):
        first, stats = _traced_export_bytes(13, tmp_path / "a.json",
                                            hedging=False)
        second, _ = _traced_export_bytes(13, tmp_path / "b.json",
                                         hedging=False)
        assert first == second
        assert stats["hedges"] == 0
        events = json.loads(first)["traceEvents"]
        assert not [e for e in events if e["name"].startswith("hedge")]

    def test_hedging_on_is_byte_identical_too(self, tmp_path):
        first, _ = _traced_export_bytes(13, tmp_path / "a.json",
                                        hedging=True)
        second, _ = _traced_export_bytes(13, tmp_path / "b.json",
                                         hedging=True)
        assert first == second


# -- chaos storm --------------------------------------------------------------


@pytest.mark.chaos
class TestHedgedChaosStorm:
    @settings(max_examples=3, deadline=None, phases=[Phase.explicit])
    @given(seed=st.integers(min_value=0, max_value=2))
    @example(seed=0)
    @example(seed=1)
    @example(seed=2)
    def test_storm_converges_checker_clean(self, seed):
        """With cloning live, a full chaos storm (crashes, notification
        mangling, KV throttling, WAN stalls) still converges and every
        oracle — convergence audit, trace invariants (including the
        hedge-discipline and double-finalize checks), deep scrub —
        comes back clean."""
        cloud, svc, src, rule = _service(seed, tracing=True, **HEDGE_KNOBS)
        conv = _stalled_replay(
            cloud, svc, src, seed=seed, requests=350, wan_stall_prob=0.05,
            crash_prob=0.05, notif_drop_prob=0.05, notif_dup_prob=0.05,
            notif_reorder_prob=0.05, kv_reject_prob=0.05, kv_delay_prob=0.05)
        assert conv.converged
        assert svc.pending_count() == 0

        audit = ReplicationAuditor(svc).audit(quiescent=True)
        assert audit.clean, [str(f) for f in audit.findings]

        report = TraceChecker(svc).check()
        assert report.clean, [str(f) for f in report.findings]

        scrub = AntiEntropyScanner(svc).scan(rule, redrive=False, scrub=True)
        assert scrub.clean, [str(f) for f in scrub.findings]

        stats = rule.engine.stats
        assert stats["hedges"] == (stats["hedge_wins"]
                                   + stats["hedge_losses"]
                                   + stats["hedge_cancelled"])
