"""Cross-module property-based tests (hypothesis).

These pin down the invariants the system's correctness arguments rest
on: kernel event ordering, blob content algebra, model percentile
monotonicity, pricing sanity, and the batching buffer's no-event-lost
guarantee.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import LocParams, NormalParam, PathParams, PerformanceModel
from repro.simcloud.objectstore import Blob
from repro.simcloud.pricing import PriceBook
from repro.simcloud.regions import REGIONS, get_region
from repro.simcloud.sim import Simulator

MB = 1024 * 1024


class TestKernelProperties:
    @given(delays=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.call_later(d, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
        assert sim.now == max(delays)

    @given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_all_of_resolves_at_max_delay(self, delays):
        sim = Simulator()

        def waiter(d):
            yield sim.sleep(d)
            return d

        def main():
            procs = [sim.spawn(waiter(d)) for d in delays]
            values = yield sim.all_of(procs)
            return values, sim.now

        values, end = sim.run_process(main())
        assert values == delays
        assert end == pytest.approx(max(delays))

    @given(delays=st.lists(st.floats(0.001, 100.0), min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_any_of_resolves_at_min_delay(self, delays):
        sim = Simulator()

        def waiter(d):
            yield sim.sleep(d)
            return d

        def main():
            idx, value = yield sim.any_of([sim.spawn(waiter(d)) for d in delays])
            return value, sim.now

        value, when = sim.run_process(main())
        assert when == pytest.approx(min(delays))
        assert value == min(delays)

    @given(
        cancel_mask=st.lists(st.booleans(), min_size=1, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_cancelled_timers_never_fire(self, cancel_mask):
        sim = Simulator()
        fired = []
        timers = [
            sim.call_later(float(i + 1), lambda i=i: fired.append(i))
            for i in range(len(cancel_mask))
        ]
        for timer, cancel in zip(timers, cancel_mask):
            if cancel:
                timer.cancel()
        sim.run()
        expected = [i for i, cancel in enumerate(cancel_mask) if not cancel]
        assert fired == expected


class TestBlobAlgebraProperties:
    @given(
        size=st.integers(2, 100_000),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_slice_of_slice_equals_direct_slice(self, size, data):
        blob = Blob.fresh(size)
        a = data.draw(st.integers(0, size - 1))
        alen = data.draw(st.integers(1, size - a))
        inner = blob.slice(a, alen)
        b = data.draw(st.integers(0, alen - 1))
        blen = data.draw(st.integers(1, alen - b))
        assert inner.slice(b, blen) == blob.slice(a + b, blen)

    @given(
        sizes=st.lists(st.integers(1, 10_000), min_size=1, max_size=6),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_slice_of_concat_matches_segment_math(self, sizes, data):
        blobs = [Blob.fresh(s) for s in sizes]
        combined = Blob.concat(blobs)
        total = sum(sizes)
        off = data.draw(st.integers(0, total - 1))
        length = data.draw(st.integers(1, total - off))
        piece = combined.slice(off, length)
        assert piece.size == length
        # Reassembling all pieces around it reproduces the whole.
        head = combined.slice(0, off)
        tail = combined.slice(off + length, total - off - length)
        assert Blob.concat([head, piece, tail]) == combined

    @given(sizes=st.lists(st.integers(0, 1000), min_size=0, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_concat_size_additive_and_empty_neutral(self, sizes):
        blobs = [Blob.fresh(s) for s in sizes]
        combined = Blob.concat(blobs + [Blob.fresh(0)])
        assert combined.size == sum(sizes)

    @given(size=st.integers(1, 10_000), parts=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_multipart_partition_roundtrip(self, size, parts):
        """The invariant behind multipart replication correctness."""
        blob = Blob.fresh(size)
        part_size = math.ceil(size / parts)
        pieces = [
            blob.slice(off, min(part_size, size - off))
            for off in range(0, size, part_size)
        ]
        assert Blob.concat(pieces).etag == blob.etag

    @given(size=st.integers(2, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_distinct_content_distinct_etag(self, size):
        a, b = Blob.fresh(size), Blob.fresh(size)
        assert a.etag != b.etag
        mixed = Blob.concat([a.slice(0, size // 2),
                             b.slice(size // 2, size - size // 2)])
        assert mixed.etag not in (a.etag, b.etag)


class TestModelProperties:
    def _model(self):
        m = PerformanceModel(chunk_size=8 * MB, mc_samples=800, seed=1)
        m.set_loc_params("loc", LocParams(
            NormalParam(0.02, 0.005), NormalParam(0.3, 0.06),
            NormalParam.zero()))
        m.set_path_params(("loc", "s", "d"), PathParams(
            NormalParam(0.2, 0.05), NormalParam(0.3, 0.06),
            NormalParam(0.35, 0.08)))
        return m

    @given(
        p1=st.floats(0.55, 0.9),
        p2=st.floats(0.91, 0.999),
        n=st.sampled_from([1, 4, 16, 64, 256]),
    )
    @settings(max_examples=40, deadline=None)
    def test_percentile_monotone_in_p(self, p1, p2, n):
        m = self._model()
        lo = m.predict_percentile(("loc", "s", "d"), 1024 * MB, n, p1)
        hi = m.predict_percentile(("loc", "s", "d"), 1024 * MB, n, p2)
        assert hi >= lo

    @given(size_mb=st.sampled_from([64, 256, 1024, 4096]))
    @settings(max_examples=20, deadline=None)
    def test_prediction_monotone_in_size(self, size_mb):
        m = self._model()
        small = m.predict_percentile(("loc", "s", "d"), size_mb * MB, 8, 0.9)
        big = m.predict_percentile(("loc", "s", "d"), 2 * size_mb * MB, 8, 0.9)
        assert big > small

    @given(n=st.sampled_from([64, 128, 256, 512]),
           p=st.floats(0.6, 0.99))
    @settings(max_examples=30, deadline=None)
    def test_gumbel_close_to_monte_carlo(self, n, p):
        m = self._model()
        size = 100 * 1024 * MB
        mc = float(np.quantile(m.transfer_tail_samples(("loc", "s", "d"),
                                                       size, n), p))
        ev = m._gumbel_percentile(("loc", "s", "d"), size, n, p)
        assert abs(ev - mc) / mc < 0.15

    def test_scaled_params_scale_predictions(self):
        m = self._model()
        before = m.predict_percentile(("loc", "s", "d"), 1024 * MB, 1, 0.9)
        m.scale_path(("loc", "s", "d"), 2.0)
        after = m.predict_percentile(("loc", "s", "d"), 1024 * MB, 1, 0.9)
        assert after > before * 1.5


class TestPricingProperties:
    @given(
        src=st.sampled_from(sorted(REGIONS)),
        dst=st.sampled_from(sorted(REGIONS)),
        nbytes=st.integers(0, 10**12),
    )
    @settings(max_examples=80, deadline=None)
    def test_egress_nonnegative_and_linear(self, src, dst, nbytes):
        book = PriceBook()
        a, b = get_region(src), get_region(dst)
        cost = book.egress_cost(a, b, nbytes)
        assert cost >= 0
        assert book.egress_cost(a, b, 2 * nbytes) == pytest.approx(2 * cost)

    @given(src=st.sampled_from(sorted(REGIONS)))
    @settings(max_examples=20, deadline=None)
    def test_intra_region_always_free(self, src):
        book = PriceBook()
        r = get_region(src)
        assert book.egress_per_gb(r, r) == 0.0

    @given(
        src=st.sampled_from(sorted(REGIONS)),
        dst=st.sampled_from(sorted(REGIONS)),
    )
    @settings(max_examples=60, deadline=None)
    def test_cross_provider_at_least_as_expensive_as_backbone(self, src, dst):
        """Leaving for a competitor never undercuts the same provider's
        own inter-region backbone from the same source region."""
        book = PriceBook()
        a, b = get_region(src), get_region(dst)
        if a.provider == b.provider or a.key == b.key:
            return
        same_provider_rates = [
            book.egress_per_gb(a, get_region(other))
            for other in REGIONS
            if get_region(other).provider == a.provider and other != a.key
        ]
        assert book.egress_per_gb(a, b) >= max(same_provider_rates) - 1e-12

    @given(duration=st.floats(0.0, 10_000.0))
    @settings(max_examples=40, deadline=None)
    def test_vm_cost_monotone_with_minimum(self, duration):
        book = PriceBook()
        cost = book.vm_cost("aws", duration)
        assert cost >= book.vm_cost("aws", 0.0)
        assert book.vm_cost("aws", duration + 100) >= cost
