"""Tests for the Skyplane, S3 RTC, and AZ Rep baselines."""

import numpy as np
import pytest

from repro.baselines.azrep import AzureObjectReplicator
from repro.baselines.s3rtc import S3RTCReplicator
from repro.baselines.skyplane import SkyplaneReplicator
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.cost import CostCategory
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024
GB_BYTES = 1024 * MB


def make_skyplane(seed=0, src="aws:us-east-1", dst="aws:us-east-2", **kw):
    cloud = build_default_cloud(seed=seed)
    src_b = cloud.bucket(src, "src")
    dst_b = cloud.bucket(dst, "dst")
    sky = SkyplaneReplicator(cloud, src_b, dst_b, **kw)
    return cloud, src_b, dst_b, sky


class TestSkyplane:
    def test_cold_transfer_dominated_by_provisioning(self):
        """Fig 4: >70 s end to end for a 10 MB object, almost none of it
        data transfer."""
        cloud, src, dst, sky = make_skyplane()
        blob = Blob.fresh(10 * MB)
        src.put_object("obj", blob, cloud.now, notify=False)
        record = sky.replicate_once("obj")
        assert 55 < record.delay < 110
        assert record.transfer_seconds < 0.35 * record.delay
        assert dst.head("obj").etag == blob.etag

    def test_vm_cost_dominates(self):
        cloud, src, dst, sky = make_skyplane(seed=1)
        src.put_object("obj", Blob.fresh(10 * MB), cloud.now, notify=False)
        sky.replicate_once("obj")
        vm = cloud.ledger.total(CostCategory.VM_COMPUTE)
        total = cloud.ledger.total()
        assert vm / total > 0.95          # Fig 4b: >99 % of cost is VMs

    def test_keepalive_amortizes_provisioning(self):
        cloud, src, dst, sky = make_skyplane(seed=2, keepalive_s=300.0)

        def driver():
            for i in range(3):
                src.put_object(f"o{i}", Blob.fresh(5 * MB), cloud.now,
                               notify=False)
                sky.submit(f"o{i}")
                yield cloud.sim.sleep(120.0)  # idle, but under keep-alive

        cloud.sim.run_process(driver())
        cloud.run(until=cloud.now + 1.0)
        assert sky.stats["provisions"] == 1
        delays = [r.delay for r in sky.records]
        assert delays[1] < delays[0] / 3  # warm transfers skip provisioning
        sky.shutdown()

    def test_idle_timeout_shuts_down(self):
        cloud, src, dst, sky = make_skyplane(seed=3, keepalive_s=60.0)
        src.put_object("o", Blob.fresh(MB), cloud.now, notify=False)
        sky.replicate_once("o")
        cloud.run(until=cloud.now + 120.0)
        assert sky.stats["shutdowns"] >= 1
        assert not sky._pairs[0].alive

    def test_busy_pair_defers_idle_shutdown(self):
        cloud, src, dst, sky = make_skyplane(seed=4, keepalive_s=60.0)

        def driver():
            src.put_object("a", Blob.fresh(MB), cloud.now, notify=False)
            sky.submit("a")
            yield cloud.sim.sleep(120.0)   # finish + ~30 s of idle
            src.put_object("b", Blob.fresh(MB), cloud.now, notify=False)
            sky.submit("b")                # reuses the still-warm pair

        cloud.sim.run_process(driver())
        assert sky.stats["provisions"] == 1

    def test_azure_transfers_slower_than_aws(self):
        def delay_for(dst_region, seed):
            cloud, src, dst, sky = make_skyplane(seed=seed, dst=dst_region)
            src.put_object("o", Blob.fresh(MB), cloud.now, notify=False)
            return sky.replicate_once("o").delay

        aws = np.mean([delay_for("aws:us-east-2", s) for s in range(4)])
        azure = np.mean([delay_for("azure:eastus", s) for s in range(4)])
        assert azure > aws + 15

    def test_bulk_striping_uses_all_pairs(self):
        cloud, src, dst, sky = make_skyplane(seed=5, vm_pairs=4)
        src.put_object("big", Blob.fresh(GB_BYTES), cloud.now, notify=False)
        record = sky.replicate_once("big")
        assert sky.stats["provisions"] == 4
        assert dst.head("big").etag == src.head("big").etag
        assert record.delay > 55  # still pays provisioning

    def test_queueing_serializes_jobs(self):
        cloud, src, dst, sky = make_skyplane(seed=6, keepalive_s=None)
        for i in range(3):
            src.put_object(f"o{i}", Blob.fresh(MB), cloud.now, notify=False)
            sky.submit(f"o{i}")
        cloud.run()
        done = sorted(r.done_time for r in sky.records)
        assert len(done) == 3
        assert done[0] < done[1] < done[2]
        sky.shutdown()

    def test_notifications_drive_transfers(self):
        cloud, src, dst, sky = make_skyplane(seed=7, keepalive_s=None)
        sky.connect_notifications()
        src.put_object("auto", Blob.fresh(MB), cloud.now)
        cloud.run()
        assert "auto" in dst
        sky.shutdown()

    def test_invalid_pair_count(self):
        cloud = build_default_cloud(seed=0)
        with pytest.raises(ValueError):
            SkyplaneReplicator(cloud, cloud.bucket("aws:us-east-1", "a"),
                               cloud.bucket("aws:us-east-2", "b"), vm_pairs=0)


class TestS3RTC:
    def make(self, seed=0, dst="aws:us-east-2"):
        cloud = build_default_cloud(seed=seed)
        src = cloud.bucket("aws:us-east-1", "src", versioning=True)
        dst_b = cloud.bucket(dst, "dst", versioning=True)
        return cloud, src, dst_b, S3RTCReplicator(cloud, src, dst_b)

    def test_typical_delay_15_to_30s(self):
        cloud, src, dst, rtc = self.make()
        delays = []
        for i in range(20):
            src.put_object(f"o{i}", Blob.fresh(MB), cloud.now, notify=False)
            delays.append(rtc.replicate_once(f"o{i}").delay)
        assert 12 < np.mean(delays) < 30

    def test_requires_aws_buckets(self):
        cloud = build_default_cloud(seed=0)
        src = cloud.bucket("aws:us-east-1", "s", versioning=True)
        dst = cloud.bucket("azure:eastus", "d", versioning=True)
        with pytest.raises(ValueError, match="AWS"):
            S3RTCReplicator(cloud, src, dst)

    def test_requires_versioning(self):
        cloud = build_default_cloud(seed=0)
        src = cloud.bucket("aws:us-east-1", "s")
        dst = cloud.bucket("aws:us-east-2", "d", versioning=True)
        with pytest.raises(ValueError, match="versioning"):
            S3RTCReplicator(cloud, src, dst)

    def test_cost_matches_rtc_fee_plus_egress(self):
        cloud, src, dst, rtc = self.make(seed=1)
        src.put_object("gig", Blob.fresh(GB_BYTES), cloud.now, notify=False)
        before = cloud.ledger.snapshot()
        rtc.replicate_once("gig")
        delta = before.delta(cloud.ledger.snapshot())
        gb = GB_BYTES / 1e9
        assert delta.totals[CostCategory.RTC_FEE] == pytest.approx(0.015 * gb)
        assert delta.totals[CostCategory.EGRESS] == pytest.approx(0.02 * gb)
        # Table 1 1GB S3 RTC: ~354e-4 $ total.
        assert 0.030 < delta.total < 0.045

    def test_burst_inflates_tail(self):
        cloud, src, dst, rtc = self.make(seed=2)
        rtc.connect_notifications()
        for i in range(3000):
            src.put_object(f"b{i}", Blob.fresh(1024), cloud.now, notify=False)
            rtc._on_event(type("E", (), {})) if False else None
        # Use the real notification path at high rate:
        for i in range(3000):
            src.put_object(f"c{i}", Blob.fresh(1024), cloud.now)
        cloud.run()
        delays = [r.delay for r in rtc.records]
        assert np.quantile(delays, 0.9999) > 30.0

    def test_deletes_propagate(self):
        cloud, src, dst, rtc = self.make(seed=3)
        rtc.connect_notifications()
        src.put_object("k", Blob.fresh(MB), cloud.now)
        cloud.run()
        assert "k" in dst
        src.delete_object("k", cloud.now)
        cloud.run()
        assert "k" not in dst

    def test_stale_event_skipped(self):
        """If the object was overwritten before delivery, the service
        replicates the newer version via its own event instead."""
        cloud, src, dst, rtc = self.make(seed=4)
        rtc.connect_notifications()
        src.put_object("k", Blob.fresh(MB), cloud.now)
        v2 = src.put_object("k", Blob.fresh(MB), cloud.now)
        cloud.run()
        assert dst.head("k").etag == v2.etag


class TestAzRep:
    def make(self, seed=0):
        cloud = build_default_cloud(seed=seed)
        src = cloud.bucket("azure:eastus", "src", versioning=True)
        dst = cloud.bucket("azure:westus2", "dst", versioning=True)
        return cloud, src, dst, AzureObjectReplicator(cloud, src, dst)

    def test_delay_exceeds_60s(self):
        cloud, src, dst, rep = self.make()
        delays = []
        for i in range(10):
            src.put_object(f"o{i}", Blob.fresh(MB), cloud.now, notify=False)
            delays.append(rep.replicate_once(f"o{i}").delay)
        assert np.mean(delays) > 55.0

    def test_azure_only(self):
        cloud = build_default_cloud(seed=0)
        src = cloud.bucket("aws:us-east-1", "s", versioning=True)
        dst = cloud.bucket("azure:eastus", "d", versioning=True)
        with pytest.raises(ValueError, match="Azure"):
            AzureObjectReplicator(cloud, src, dst)

    def test_no_service_fee_only_bandwidth(self):
        cloud, src, dst, rep = self.make(seed=1)
        src.put_object("gig", Blob.fresh(GB_BYTES), cloud.now, notify=False)
        before = cloud.ledger.snapshot()
        rep.replicate_once("gig")
        delta = before.delta(cloud.ledger.snapshot())
        assert CostCategory.RTC_FEE not in delta.totals or \
            delta.totals[CostCategory.RTC_FEE] == 0
        # Table 2 1GB AZ Rep westus2: ~203e-4 $ (mostly NA-NA bandwidth).
        assert 0.015 < delta.total < 0.035
