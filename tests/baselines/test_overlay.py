"""Tests for Skyplane's overlay relays (§6's orthogonal acceleration)."""

import numpy as np
import pytest

from repro.baselines.skyplane import SkyplaneReplicator
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.cost import CostCategory
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024
GB = 1024 * MB

# A slow direct link: Azure southeastasia -> GCP europe-west6 crosses
# AP->EU (the worst continent factor) on Azure's weak WAN.
SLOW_SRC, SLOW_DST = "azure:southeastasia", "gcp:europe-west6"


def make(seed, overlay=None, src=SLOW_SRC, dst=SLOW_DST):
    cloud = build_default_cloud(seed=seed)
    src_b = cloud.bucket(src, "src")
    dst_b = cloud.bucket(dst, "dst")
    sky = SkyplaneReplicator(cloud, src_b, dst_b, overlay_region=overlay)
    return cloud, src_b, dst_b, sky


class TestOverlayPlanning:
    def test_slow_pair_gets_a_relay(self):
        cloud, src_b, dst_b, _ = make(seed=0)
        relay = SkyplaneReplicator.plan_overlay(cloud, src_b, dst_b)
        assert relay is not None
        assert relay not in (SLOW_SRC, SLOW_DST)

    def test_fast_pair_goes_direct(self):
        cloud, src_b, dst_b, _ = make(seed=0, src="aws:us-east-1",
                                      dst="aws:us-east-2")
        assert SkyplaneReplicator.plan_overlay(cloud, src_b, dst_b) is None

    def test_candidate_restriction(self):
        cloud, src_b, dst_b, _ = make(seed=0)
        relay = SkyplaneReplicator.plan_overlay(
            cloud, src_b, dst_b, candidates=["aws:eu-west-1"])
        assert relay in (None, "aws:eu-west-1")

    def test_endpoint_overlay_rejected_silently(self):
        cloud, src_b, dst_b, sky = make(seed=0, overlay=SLOW_SRC)
        assert sky.overlay_region is None


class TestOverlayTransfers:
    def test_overlay_transfer_correct_and_provisions_three_vms(self):
        cloud, src_b, dst_b, sky = make(seed=1, overlay="aws:eu-west-1")
        blob = Blob.fresh(GB)
        src_b.put_object("big", blob, cloud.now, notify=False)
        record = sky.replicate_once("big")
        assert dst_b.head("big").etag == blob.etag
        assert sky._pairs[0].relay is None  # terminated after transfer
        assert record.delay > 60  # still pays (3-way) provisioning

    def test_overlay_raises_bottleneck_bandwidth(self):
        def transfer_seconds(overlay, seed):
            cloud, src_b, dst_b, sky = make(seed=seed, overlay=overlay)
            src_b.put_object("big", Blob.fresh(2 * GB), cloud.now,
                             notify=False)
            record = sky.replicate_once("big")
            return record.transfer_seconds

        cloud, src_b, dst_b, _ = make(seed=0)
        relay = SkyplaneReplicator.plan_overlay(cloud, src_b, dst_b)
        direct = np.mean([transfer_seconds(None, s) for s in range(3)])
        relayed = np.mean([transfer_seconds(relay, s) for s in range(3)])
        assert relayed < direct

    def test_overlay_charges_both_hops(self):
        size = GB
        cloud, src_b, dst_b, sky = make(seed=2, overlay="aws:eu-west-1")
        src_b.put_object("big", Blob.fresh(size), cloud.now, notify=False)
        before = cloud.ledger.snapshot()
        sky.replicate_once("big")
        egress = before.delta(cloud.ledger.snapshot()).totals[CostCategory.EGRESS]
        hop1 = cloud.prices.egress_cost(cloud.region(SLOW_SRC),
                                        cloud.region("aws:eu-west-1"), size)
        hop2 = cloud.prices.egress_cost(cloud.region("aws:eu-west-1"),
                                        cloud.region(SLOW_DST), size)
        direct = cloud.prices.egress_cost(cloud.region(SLOW_SRC),
                                          cloud.region(SLOW_DST), size)
        assert egress == pytest.approx(hop1 + hop2)
        assert egress > direct  # the overlay's explicit cost premium

    def test_direct_transfer_unaffected_by_feature(self):
        cloud, src_b, dst_b, sky = make(seed=3, overlay=None)
        src_b.put_object("k", Blob.fresh(64 * MB), cloud.now, notify=False)
        record = sky.replicate_once("k")
        assert dst_b.head("k").etag == src_b.head("k").etag
        assert not sky._pairs[0].uses_relay
