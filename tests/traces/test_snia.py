"""Tests for the SNIA IBM COS trace loader."""

import gzip
import io

import pytest

from repro.simcloud.cloud import build_default_cloud
from repro.traces.replay import TraceReplayer
from repro.traces.snia import SniaFormatError, load_snia_trace, parse_snia_lines

SAMPLE = """\
# IBM COS trace excerpt (synthetic sample in the real format)
1219008 REST.PUT.OBJECT 8a9b1c 1024
1219500 REST.GET.OBJECT 8a9b1c 1024 0 511
1220000 REST.HEAD.OBJECT 8a9b1c
1221000 REST.PUT.OBJECT deadbeef 52428800
1224000 REST.DELETE.OBJECT 8a9b1c
1225000 REST.GET.OBJECT deadbeef 52428800 0 52428799
"""


class TestParsing:
    def test_keeps_only_puts_and_deletes(self):
        reqs = list(parse_snia_lines(io.StringIO(SAMPLE)))
        assert [r.op for r in reqs] == ["PUT", "PUT", "DELETE"]

    def test_timestamps_rebased_to_seconds(self):
        reqs = list(parse_snia_lines(io.StringIO(SAMPLE)))
        assert reqs[0].time == 0.0
        assert reqs[1].time == pytest.approx(1.992)  # 1221000-1219008 ms
        assert reqs[2].time == pytest.approx(4.992)

    def test_sizes_parsed(self):
        reqs = list(parse_snia_lines(io.StringIO(SAMPLE)))
        assert reqs[0].size == 1024
        assert reqs[1].size == 52428800
        assert reqs[2].size == 0

    def test_comments_and_blank_lines_skipped(self):
        text = "\n# comment\n\n100 REST.PUT.OBJECT k 5\n"
        reqs = list(parse_snia_lines(io.StringIO(text)))
        assert len(reqs) == 1

    def test_unsized_put_dropped_by_default(self):
        text = "100 REST.PUT.OBJECT k\n200 REST.PUT.OBJECT j 7\n"
        reqs = list(parse_snia_lines(io.StringIO(text)))
        assert [r.key for r in reqs] == ["j"]

    def test_unsized_put_kept_on_request(self):
        text = "100 REST.PUT.OBJECT k\n"
        reqs = list(parse_snia_lines(io.StringIO(text), keep_unsized_puts=True))
        assert reqs[0].size == 0

    def test_malformed_lines_skipped_lenient(self):
        text = "garbage\nnot-a-ts REST.PUT.OBJECT k 5\n100 REST.PUT.OBJECT k x\n200 REST.PUT.OBJECT ok 5\n"
        reqs = list(parse_snia_lines(io.StringIO(text)))
        assert [r.key for r in reqs] == ["ok"]

    def test_strict_mode_raises(self):
        with pytest.raises(SniaFormatError):
            list(parse_snia_lines(io.StringIO("bad line here extra\n"),
                                  strict=True))
        with pytest.raises(SniaFormatError):
            list(parse_snia_lines(io.StringIO("100 REST.PUT.OBJECT k xyz\n"),
                                  strict=True))

    def test_copy_counts_as_put(self):
        text = "100 REST.COPY.OBJECT k 5\n"
        reqs = list(parse_snia_lines(io.StringIO(text)))
        assert reqs[0].op == "PUT"


class TestLoading:
    def test_load_plain_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text(SAMPLE)
        reqs = load_snia_trace(path)
        assert len(reqs) == 3

    def test_load_gzip_file(self, tmp_path):
        path = tmp_path / "trace.txt.gz"
        with gzip.open(path, "wt") as f:
            f.write(SAMPLE)
        reqs = load_snia_trace(path)
        assert len(reqs) == 3

    def test_limit(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text(SAMPLE)
        assert len(load_snia_trace(path, limit=2)) == 2

    def test_load_from_file_object(self):
        assert len(load_snia_trace(io.StringIO(SAMPLE))) == 3

    def test_loaded_trace_replays(self):
        """A loaded real-format trace drives the standard replayer."""
        cloud = build_default_cloud(seed=0)
        bucket = cloud.bucket("aws:us-east-1", "b")
        stats = TraceReplayer(cloud, bucket).replay_all(
            load_snia_trace(io.StringIO(SAMPLE)))
        assert stats.puts == 2
        assert stats.deletes == 1
        assert "deadbeef" in bucket and "8a9b1c" not in bucket
