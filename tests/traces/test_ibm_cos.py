"""Tests for the synthetic IBM COS trace generator and replayer."""

import numpy as np
import pytest

from repro.analysis.stats import fraction_at_or_below, size_histogram
from repro.simcloud.cloud import build_default_cloud
from repro.traces.ibm_cos import MB, GB, IbmCosTraceGenerator, SizeModel, TraceRequest
from repro.traces.replay import TraceReplayer
from repro.traces.workload import UpdateWorkload, uniform_object_workload


class TestSizeModel:
    def test_fig2_eighty_percent_at_or_below_1mb(self):
        sizes = SizeModel(np.random.default_rng(0)).sample(100_000)
        share = fraction_at_or_below(sizes, MB)
        assert 0.72 <= share <= 0.88     # "~80 % of the PUT requests"

    def test_fig2_vast_majority_below_1gb(self):
        sizes = SizeModel(np.random.default_rng(0)).sample(200_000)
        assert fraction_at_or_below(sizes, GB) > 0.9995  # ">99.99 %"

    def test_capacity_dominated_by_large_objects(self):
        """Fig 2's two bar series diverge: small objects dominate count,
        large objects dominate capacity."""
        sizes = SizeModel(np.random.default_rng(1)).sample(200_000)
        hist = size_histogram(sizes)
        small_count = sum(hist[l]["count"] for l in ("1B", "10B", "100B", "1KB", "10KB", "100KB"))
        small_capacity = sum(hist[l]["capacity"] for l in ("1B", "10B", "100B", "1KB", "10KB", "100KB"))
        assert small_count > 0.5
        assert small_capacity < 0.05

    def test_sizes_positive(self):
        sizes = SizeModel(np.random.default_rng(2)).sample(10_000)
        assert (sizes >= 1).all()


class TestTraceGenerator:
    def test_deterministic_under_seed(self):
        a = IbmCosTraceGenerator(seed=5).generate(300.0)
        b = IbmCosTraceGenerator(seed=5).generate(300.0)
        assert a == b
        c = IbmCosTraceGenerator(seed=6).generate(300.0)
        assert a != c

    def test_timestamps_sorted_within_duration(self):
        trace = IbmCosTraceGenerator(seed=0).generate(600.0)
        times = [r.time for r in trace]
        assert times == sorted(times)
        assert 0 <= times[0] and times[-1] <= 600.0

    def test_mean_rate_roughly_respected(self):
        gen = IbmCosTraceGenerator(seed=1, mean_rps=50.0)
        trace = gen.generate(1800.0)
        rate = len(trace) / 1800.0
        assert 25.0 < rate < 100.0

    def test_fig3_bursty_minute_rates(self):
        """Fig 3: throughput changes sharply from minute to minute."""
        gen = IbmCosTraceGenerator(seed=2)
        rates = gen.minute_rates(6 * 3600.0)
        ratios = rates[1:] / rates[:-1]
        assert ratios.max() > 2.0        # at least one sharp jump
        assert rates.max() / np.median(rates) > 3.0  # bursts well above typical

    def test_deletes_only_target_live_keys(self):
        gen = IbmCosTraceGenerator(seed=3, delete_fraction=0.2)
        live = set()
        for req in gen.generate(900.0):
            if req.op == "PUT":
                live.add(req.key)
            else:
                assert req.key in live
                live.discard(req.key)

    def test_hot_keys_receive_updates(self):
        gen = IbmCosTraceGenerator(seed=4, update_fraction=0.5)
        trace = gen.generate(900.0)
        puts = [r.key for r in trace if r.op == "PUT"]
        assert len(set(puts)) < len(puts)  # some keys written repeatedly

    def test_busy_hour_request_budget(self):
        gen = IbmCosTraceGenerator(seed=5)
        trace = gen.busy_hour(total_requests=5_000)
        assert 2_000 < len(trace) < 12_000
        assert trace[-1].time <= 3600.0


class TestReplayer:
    def test_replay_applies_puts_and_deletes(self):
        cloud = build_default_cloud(seed=0)
        bucket = cloud.bucket("aws:us-east-1", "b")
        trace = [
            TraceRequest(0.0, "PUT", "a", 100),
            TraceRequest(1.0, "PUT", "b", 200),
            TraceRequest(2.0, "DELETE", "a", 0),
        ]
        stats = TraceReplayer(cloud, bucket).replay_all(trace)
        assert stats.puts == 2
        assert stats.deletes == 1
        assert "a" not in bucket and "b" in bucket

    def test_replay_respects_timestamps(self):
        cloud = build_default_cloud(seed=0)
        bucket = cloud.bucket("aws:us-east-1", "b")
        arrivals = []
        bucket.subscribe(lambda ev: arrivals.append(ev.event_time))
        trace = [TraceRequest(float(i) * 10, "PUT", f"k{i}", 1) for i in range(3)]
        TraceReplayer(cloud, bucket).replay_all(trace)
        assert arrivals == [0.0, 10.0, 20.0]

    def test_time_scale_compresses(self):
        cloud = build_default_cloud(seed=0)
        bucket = cloud.bucket("aws:us-east-1", "b")
        trace = [TraceRequest(100.0, "PUT", "k", 1)]
        TraceReplayer(cloud, bucket, time_scale=0.1).replay_all(trace)
        assert cloud.now == pytest.approx(10.0)

    def test_delete_of_missing_key_skipped(self):
        cloud = build_default_cloud(seed=0)
        bucket = cloud.bucket("aws:us-east-1", "b")
        stats = TraceReplayer(cloud, bucket).replay_all(
            [TraceRequest(0.0, "DELETE", "ghost", 0)]
        )
        assert stats.skipped_deletes == 1

    def test_unknown_op_rejected(self):
        cloud = build_default_cloud(seed=0)
        bucket = cloud.bucket("aws:us-east-1", "b")
        with pytest.raises(ValueError):
            TraceReplayer(cloud, bucket).replay_all(
                [TraceRequest(0.0, "HEAD", "k", 0)]
            )

    def test_invalid_time_scale(self):
        cloud = build_default_cloud(seed=0)
        with pytest.raises(ValueError):
            TraceReplayer(cloud, cloud.bucket("aws:us-east-1", "b"), time_scale=0)


class TestWorkloads:
    def test_update_workload_spacing(self):
        w = UpdateWorkload("hot", MB, updates_per_minute=10, duration_s=60.0)
        reqs = list(w.requests())
        assert len(reqs) == 10
        assert reqs[1].time - reqs[0].time == pytest.approx(6.0)

    def test_update_workload_invalid_frequency(self):
        w = UpdateWorkload("hot", MB, updates_per_minute=0, duration_s=60.0)
        with pytest.raises(ValueError):
            list(w.requests())

    def test_uniform_workload(self):
        reqs = uniform_object_workload(3, 100, spacing_s=5.0)
        assert [r.key for r in reqs] == ["obj0", "obj1", "obj2"]
        assert [r.time for r in reqs] == [0.0, 5.0, 10.0]

    def test_uniform_workload_invalid_count(self):
        with pytest.raises(ValueError):
            uniform_object_workload(0, 100)
