"""Tests for the areplica CLI."""

import pytest

from repro.cli import build_parser, main, parse_size


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("512", 512),
            ("1KB", 1024),
            ("8MB", 8 * 1024**2),
            ("1.5GB", int(1.5 * 1024**3)),
            ("1 TB", 1024**4),
            ("100b", 100),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "12XB", "MB"])
    def test_invalid(self, text):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_size(text)


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("replicate", "plan", "profile", "trace", "compare"):
            args = parser.parse_args([cmd] if cmd != "trace" else [cmd])
            assert args.command == cmd

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_replicate(self, capsys):
        rc = main(["replicate", "--size", "1MB", "--dst", "aws:us-east-2",
                   "--profile-samples", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "delay:" in out and "cost:" in out

    def test_plan_with_slo(self, capsys):
        rc = main(["plan", "--size", "128MB", "--slo", "30",
                   "--profile-samples", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "parallelism:" in out
        assert "candidates:" in out

    def test_profile(self, capsys):
        rc = main(["profile", "--dst", "aws:us-east-2",
                   "--profile-samples", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "C  (per chunk)" in out

    def test_trace_small(self, capsys):
        rc = main(["trace", "--requests", "300", "--dst", "aws:us-east-2",
                   "--profile-samples", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "p99.99" in out

    def test_compare_includes_proprietary_on_aws(self, capsys):
        rc = main(["compare", "--size", "1MB", "--src", "aws:us-east-1",
                   "--dst", "aws:us-east-2", "--profile-samples", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Skyplane" in out and "S3 RTC" in out

    def test_compare_cross_cloud_no_proprietary(self, capsys):
        rc = main(["compare", "--size", "1MB", "--src", "aws:us-east-1",
                   "--dst", "gcp:us-east1", "--profile-samples", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "S3 RTC" not in out and "AZ Rep" not in out

    @pytest.mark.chaos
    def test_chaos_soak_converges(self, capsys):
        rc = main(["chaos-soak", "--requests", "150",
                   "--dst", "aws:us-east-2", "--profile-samples", "4"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "RESULT: CONVERGED" in out
        assert "injected faults:" in out
        assert "dead-letter drain: converged" in out

    @pytest.mark.outage
    def test_outage_drill_passes(self, capsys):
        rc = main(["outage-drill", "--seed", "0", "--requests", "150",
                   "--profile-samples", "4"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "RESULT: PASS" in out
        assert "degraded operation:" in out
        assert "repair scan rule1: clean" in out

    @pytest.mark.outage
    def test_outage_drill_json_report(self, capsys):
        import json

        rc = main(["outage-drill", "--seed", "0", "--requests", "150",
                   "--profile-samples", "4", "--json"])
        out = capsys.readouterr().out
        assert rc == 0, out
        report = json.loads(out)
        assert report["result"] == "PASS"
        assert report["degradation_engaged"] is True
        assert report["convergence"]["converged"] is True
        assert report["repair"]["clean"] is True
        assert report["parked_backlog"] == 0
        assert "health" in report and "engine_stats" in report
