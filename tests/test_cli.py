"""Tests for the areplica CLI."""

import pytest

from repro.cli import build_parser, main, parse_size


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("512", 512),
            ("1KB", 1024),
            ("8MB", 8 * 1024**2),
            ("1.5GB", int(1.5 * 1024**3)),
            ("1 TB", 1024**4),
            ("100b", 100),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "12XB", "MB"])
    def test_invalid(self, text):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_size(text)


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("replicate", "plan", "profile", "trace", "compare"):
            args = parser.parse_args([cmd] if cmd != "trace" else [cmd])
            assert args.command == cmd

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_replicate(self, capsys):
        rc = main(["replicate", "--size", "1MB", "--dst", "aws:us-east-2",
                   "--profile-samples", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "delay:" in out and "cost:" in out

    def test_plan_with_slo(self, capsys):
        rc = main(["plan", "--size", "128MB", "--slo", "30",
                   "--profile-samples", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "parallelism:" in out
        assert "candidates:" in out

    def test_profile(self, capsys):
        rc = main(["profile", "--dst", "aws:us-east-2",
                   "--profile-samples", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "C  (per chunk)" in out

    def test_trace_small(self, capsys):
        rc = main(["trace", "--requests", "300", "--dst", "aws:us-east-2",
                   "--profile-samples", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "p99.99" in out

    def test_compare_includes_proprietary_on_aws(self, capsys):
        rc = main(["compare", "--size", "1MB", "--src", "aws:us-east-1",
                   "--dst", "aws:us-east-2", "--profile-samples", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Skyplane" in out and "S3 RTC" in out

    def test_compare_cross_cloud_no_proprietary(self, capsys):
        rc = main(["compare", "--size", "1MB", "--src", "aws:us-east-1",
                   "--dst", "gcp:us-east1", "--profile-samples", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "S3 RTC" not in out and "AZ Rep" not in out

    @pytest.mark.chaos
    def test_chaos_soak_converges(self, capsys):
        rc = main(["chaos-soak", "--requests", "150",
                   "--dst", "aws:us-east-2", "--profile-samples", "4"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "RESULT: CONVERGED" in out
        assert "injected faults:" in out
        assert "dead-letter drain: converged" in out

    @pytest.mark.outage
    def test_outage_drill_passes(self, capsys):
        rc = main(["outage-drill", "--seed", "0", "--requests", "150",
                   "--profile-samples", "4"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "RESULT: PASS" in out
        assert "degraded operation:" in out
        assert "repair scan rule1: clean" in out

    @pytest.mark.outage
    def test_outage_drill_json_report(self, capsys):
        import json

        rc = main(["outage-drill", "--seed", "0", "--requests", "150",
                   "--profile-samples", "4", "--json"])
        out = capsys.readouterr().out
        assert rc == 0, out
        report = json.loads(out)
        assert report["result"] == "PASS"
        assert report["degradation_engaged"] is True
        assert report["convergence"]["converged"] is True
        assert report["repair"]["clean"] is True
        assert report["parked_backlog"] == 0
        assert "health" in report and "engine_stats" in report


class TestDrillAll:
    """``drill-all`` aggregation semantics, with the real drills stubbed
    out: one drill reporting ``pass: false`` — or crashing outright —
    must surface as a FAIL row and a nonzero exit, never as a pass by
    omission or an aborted roster.  (The roster's handlers resolve as
    ``repro.cli`` module globals at call time, so monkeypatching them
    swaps in fast fakes.)"""

    HANDLERS = ("cmd_chaos_soak", "cmd_outage_drill",
                "cmd_corruption_drill", "cmd_hedge_drill",
                "cmd_lifecycle_drill", "cmd_tenant_drill",
                "cmd_autopilot_drill")
    ROSTER = ("chaos-soak", "outage-drill", "corruption-drill",
              "hedge-drill", "lifecycle-evacuate", "lifecycle-rolling",
              "lifecycle-switchover", "tenant-drill", "autopilot-drill")

    @staticmethod
    def _passing(args):
        import json

        # No "scenario" key: the aggregator falls back to its own roster
        # name for the row, which the tests below assert against.
        print(json.dumps({"seed": args.seed, "pass": True}))
        return 0

    def _stub_all(self, monkeypatch, handler=None):
        import repro.cli as cli

        for name in self.HANDLERS:
            monkeypatch.setattr(cli, name, handler or self._passing)

    def test_all_pass_exits_zero_and_covers_the_roster(self, monkeypatch,
                                                       capsys):
        import json

        self._stub_all(monkeypatch)
        rc = main(["drill-all", "--seed", "3", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert report["pass"] is True
        assert [d["scenario"] for d in report["drills"]] == list(self.ROSTER)
        assert all(d["pass"] for d in report["drills"])
        assert all(d["seed"] == 3 for d in report["drills"])

    def test_pass_false_report_fails_the_aggregate(self, monkeypatch,
                                                   capsys):
        import json

        def failing(args):
            print(json.dumps({"scenario": "tenant-drill", "seed": args.seed,
                              "pass": False}))
            return 1

        self._stub_all(monkeypatch)
        monkeypatch.setattr("repro.cli.cmd_tenant_drill", failing)
        rc = main(["drill-all", "--seed", "0", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert report["pass"] is False
        verdicts = {d["scenario"]: d["pass"] for d in report["drills"]}
        assert verdicts.pop("tenant-drill") is False
        assert all(verdicts.values()), "an unrelated drill got blamed"

    def test_raising_drill_is_a_fail_row_not_a_crash(self, monkeypatch,
                                                     capsys):
        import json

        def exploding(args):
            raise RuntimeError("boom")

        self._stub_all(monkeypatch)
        monkeypatch.setattr("repro.cli.cmd_outage_drill", exploding)
        rc = main(["drill-all", "--seed", "0", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert report["pass"] is False
        # The crash neither aborted the roster nor lost its own row.
        assert len(report["drills"]) == len(self.ROSTER)
        verdicts = {d["scenario"]: d["pass"] for d in report["drills"]}
        assert verdicts["outage-drill"] is False
        assert sum(1 for v in verdicts.values() if not v) == 1
        failed = [r for r in report["reports"]
                  if r.get("scenario") == "outage-drill"]
        assert failed and "RuntimeError: boom" in failed[0]["error"]

    def test_text_mode_prints_fail_verdict(self, monkeypatch, capsys):
        def failing(args):
            print('{"pass": false}')
            return 1

        self._stub_all(monkeypatch)
        monkeypatch.setattr("repro.cli.cmd_hedge_drill", failing)
        rc = main(["drill-all", "--seed", "0"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "RESULT: FAIL" in out
        assert out.count("PASS") == len(self.ROSTER) - 1
