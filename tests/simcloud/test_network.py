"""Tests for the WAN fabric: asymmetry, variability, config scaling."""

import numpy as np
import pytest

from repro.simcloud.network import (
    BEST_CONFIGS,
    DEFAULT_PROFILE,
    FunctionConfig,
    NetworkFabric,
    NetworkProfile,
)
from repro.simcloud.regions import get_region
from repro.simcloud.rng import RngFactory

AWS_USE1 = get_region("aws:us-east-1")
AWS_CAC1 = get_region("aws:ca-central-1")
AWS_APNE1 = get_region("aws:ap-northeast-1")
AZ_EASTUS = get_region("azure:eastus")
GCP_USE1 = get_region("gcp:us-east1")
GCP_APNE1 = get_region("gcp:asia-northeast1")

MB = 10**6


def make_fabric(seed=0):
    return NetworkFabric(RngFactory(seed))


class TestMeanBandwidth:
    def setup_method(self):
        self.fabric = make_fabric()
        self.cfg = BEST_CONFIGS["aws"]

    def test_intra_region_fastest(self):
        intra = self.fabric.path_mbps(AWS_USE1, AWS_USE1, self.cfg, upload=False)
        inter = self.fabric.path_mbps(AWS_USE1, AWS_CAC1, self.cfg, upload=False)
        assert intra > inter

    def test_nearby_faster_than_far(self):
        near = self.fabric.path_mbps(AWS_USE1, AWS_CAC1, self.cfg, upload=False)
        far = self.fabric.path_mbps(AWS_USE1, AWS_APNE1, self.cfg, upload=False)
        assert near > far

    def test_cross_provider_slower_than_same_provider(self):
        same = self.fabric.path_mbps(AWS_USE1, AWS_CAC1, self.cfg, upload=False)
        cross = self.fabric.path_mbps(AWS_USE1, AZ_EASTUS, self.cfg, upload=False)
        assert cross < same

    def test_upload_slower_than_download(self):
        down = self.fabric.path_mbps(AWS_USE1, AWS_CAC1, self.cfg, upload=False)
        up = self.fabric.path_mbps(AWS_USE1, AWS_CAC1, self.cfg, upload=True)
        assert up < down

    def test_single_function_bandwidth_few_hundred_mbps(self):
        """Opportunity #1: hundreds of Mbps between regions."""
        bw = self.fabric.path_mbps(AWS_USE1, AWS_CAC1, self.cfg, upload=False)
        assert 100 <= bw <= 1000

    def test_platform_asymmetry(self):
        """Challenge #1 (Fig 8): speed depends on where functions run,
        not only on the (src, dst) pair."""
        at_aws = self.fabric.mean_transfer_seconds(
            AWS_USE1, AWS_USE1, AZ_EASTUS, 1000 * MB, BEST_CONFIGS["aws"]
        )
        at_azure = self.fabric.mean_transfer_seconds(
            AZ_EASTUS, AWS_USE1, AZ_EASTUS, 1000 * MB, BEST_CONFIGS["azure"]
        )
        assert at_aws != pytest.approx(at_azure, rel=0.05)

    def test_pair_override_wins(self):
        # Keyed by data flow: downloads from ca-central-1 into a
        # function at us-east-1 move bytes ca-central-1 -> us-east-1.
        profile = NetworkProfile(
            pair_overrides={("aws", AWS_CAC1.key, AWS_USE1.key): 50.0})
        fabric = NetworkFabric(RngFactory(0), profile)
        cfg = FunctionConfig(memory_mb=2048, vcpus=1.0)  # full AWS scale
        bw = fabric.path_mbps(AWS_USE1, AWS_CAC1, cfg, upload=False)
        assert bw == pytest.approx(50.0)


class TestConfigScaling:
    """Fig 6: bandwidth vs memory/CPU configuration with a sweet spot."""

    def test_aws_memory_scaling_saturates(self):
        p = DEFAULT_PROFILE
        low = p.config_scale("aws", FunctionConfig(memory_mb=128))
        mid = p.config_scale("aws", FunctionConfig(memory_mb=1024))
        high = p.config_scale("aws", FunctionConfig(memory_mb=8192))
        assert low < mid
        assert mid == high == 1.0  # sweet spot at ~1 GB

    def test_azure_min_config_is_knee(self):
        p = DEFAULT_PROFILE
        assert p.config_scale("azure", FunctionConfig(memory_mb=2048)) == 1.0
        assert p.config_scale("azure", FunctionConfig(memory_mb=4096)) == 1.0

    def test_gcp_scales_with_vcpus_not_memory(self):
        p = DEFAULT_PROFILE
        one = p.config_scale("gcp", FunctionConfig(memory_mb=1024, vcpus=1))
        two = p.config_scale("gcp", FunctionConfig(memory_mb=1024, vcpus=2))
        eight = p.config_scale("gcp", FunctionConfig(memory_mb=1024, vcpus=8))
        assert one < two
        assert two == eight == 1.0

    def test_scale_bounded(self):
        p = DEFAULT_PROFILE
        for provider in ("aws", "azure", "gcp"):
            s = p.config_scale(provider, FunctionConfig(memory_mb=128, vcpus=0.1))
            assert 0 < s <= 1.0


class TestInstanceVariability:
    """Challenge #2 (Fig 9): >2x spread between instances, no pattern."""

    def test_instance_factors_spread(self):
        fabric = make_fabric()
        factors = [fabric.open_channel("azure").base_factor for _ in range(300)]
        assert max(factors) / min(factors) > 2.0

    def test_aws_more_stable_than_azure(self):
        fabric = make_fabric()
        aws = np.std([fabric.open_channel("aws").base_factor for _ in range(500)])
        azure = np.std([fabric.open_channel("azure").base_factor for _ in range(500)])
        assert aws < azure

    def test_factor_mean_near_one(self):
        fabric = make_fabric()
        factors = [fabric.open_channel("aws").base_factor for _ in range(3000)]
        assert abs(np.mean(factors) - 1.0) < 0.05

    def test_within_instance_autocorrelation(self):
        """Consecutive transfers by one instance are correlated (AR drift),
        so a slow instance tends to stay slow."""
        fabric = make_fabric()
        chan = fabric.open_channel("azure")
        xs = np.array([chan.next_factor() for _ in range(4000)])
        lag1 = np.corrcoef(xs[:-1], xs[1:])[0, 1]
        assert lag1 > 0.4

    def test_factors_positive(self):
        fabric = make_fabric()
        chan = fabric.open_channel("gcp")
        assert all(chan.next_factor() > 0 for _ in range(100))


class TestSampling:
    def test_sample_transfer_positive_and_reproducible(self):
        t1 = make_fabric(7)
        t2 = make_fabric(7)
        c1, c2 = t1.open_channel("aws"), t2.open_channel("aws")
        cfg = BEST_CONFIGS["aws"]
        s1 = t1.sample_transfer_seconds(AWS_USE1, AWS_USE1, AWS_CAC1, 8 * MB, cfg, c1)
        s2 = t2.sample_transfer_seconds(AWS_USE1, AWS_USE1, AWS_CAC1, 8 * MB, cfg, c2)
        assert s1 == pytest.approx(s2)
        assert s1 > 0

    def test_more_bytes_take_longer_on_average(self):
        fabric = make_fabric()
        cfg = BEST_CONFIGS["aws"]
        small = np.mean([
            fabric.sample_transfer_seconds(
                AWS_USE1, AWS_USE1, AWS_CAC1, MB, cfg, fabric.open_channel("aws"))
            for _ in range(50)
        ])
        big = np.mean([
            fabric.sample_transfer_seconds(
                AWS_USE1, AWS_USE1, AWS_CAC1, 64 * MB, cfg, fabric.open_channel("aws"))
            for _ in range(50)
        ])
        assert big > small * 10

    def test_congestion_reduces_azure_bandwidth_more(self):
        fabric = make_fabric()
        az_div, az_sigma = fabric.congestion_scale("azure", 32)
        aws_div, aws_sigma = fabric.congestion_scale("aws", 32)
        assert az_div > aws_div
        assert az_sigma > aws_sigma

    def test_no_congestion_at_one(self):
        fabric = make_fabric()
        assert fabric.congestion_scale("azure", 1) == (1.0, 0.0)

    def test_startup_overhead_positive(self):
        fabric = make_fabric()
        assert all(fabric.sample_startup(p) > 0 for p in ("aws", "azure", "gcp"))

    def test_near_linear_aggregate_scaling(self):
        """Opportunity #2 (Fig 7): aggregate bandwidth with n functions is
        near-linear — n=64 achieves >70 % of perfect scaling on AWS."""
        fabric = make_fabric()
        cfg = BEST_CONFIGS["aws"]
        size = 64 * MB

        def aggregate_mbps(n):
            times = [
                fabric.sample_transfer_seconds(
                    AWS_USE1, AWS_USE1, AWS_CAC1, size, cfg,
                    fabric.open_channel("aws"), concurrency=n)
                for _ in range(n)
            ]
            return n * size * 8 / MB / np.mean(times)

        one = aggregate_mbps(1)
        sixty_four = aggregate_mbps(64)
        assert sixty_four > 0.7 * 64 * one
