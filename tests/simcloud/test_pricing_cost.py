"""Tests for the price book and cost ledger."""

import pytest

from repro.simcloud.cost import CostCategory, CostLedger
from repro.simcloud.pricing import GB, PriceBook
from repro.simcloud.regions import get_region

AWS_USE1 = get_region("aws:us-east-1")
AWS_CAC1 = get_region("aws:ca-central-1")
AWS_APNE1 = get_region("aws:ap-northeast-1")
AZ_EASTUS = get_region("azure:eastus")
AZ_UKSOUTH = get_region("azure:uksouth")
GCP_USE1 = get_region("gcp:us-east1")
GCP_EUW6 = get_region("gcp:europe-west6")


class TestEgressPricing:
    def setup_method(self):
        self.p = PriceBook()

    def test_intra_region_free(self):
        assert self.p.egress_per_gb(AWS_USE1, AWS_USE1) == 0.0

    def test_aws_inter_region_backbone(self):
        assert self.p.egress_per_gb(AWS_USE1, AWS_CAC1) == 0.02

    def test_cross_provider_uses_internet_rate(self):
        assert self.p.egress_per_gb(AWS_USE1, AZ_EASTUS) == 0.09
        assert self.p.egress_per_gb(AZ_EASTUS, AWS_USE1) == 0.087
        assert self.p.egress_per_gb(GCP_USE1, AWS_USE1) == 0.12

    def test_gcp_intra_continent_cheapest(self):
        assert self.p.egress_per_gb(GCP_USE1, get_region("gcp:us-west1")) == 0.01

    def test_cross_continent_same_provider(self):
        assert self.p.egress_per_gb(AZ_EASTUS, AZ_UKSOUTH) == 0.05
        assert self.p.egress_per_gb(GCP_USE1, GCP_EUW6) == 0.05

    def test_egress_cost_scales_with_bytes(self):
        one_gb = self.p.egress_cost(AWS_USE1, AWS_CAC1, GB)
        assert one_gb == pytest.approx(0.02)
        assert self.p.egress_cost(AWS_USE1, AWS_CAC1, GB // 2) == pytest.approx(0.01)

    def test_egress_dominates_for_large_cross_cloud_objects(self):
        """Paper §8.1: for 1 GB cross-cloud, egress is ~90 % of AReplica's
        total cost (~$0.09 of ~$0.091)."""
        assert self.p.egress_cost(AWS_USE1, AZ_EASTUS, GB) == pytest.approx(0.09)


class TestComputePricing:
    def setup_method(self):
        self.p = PriceBook()

    def test_lambda_gb_second(self):
        # 1024 MB for 10 s = 10 GB-s at $0.0000166667.
        cost = self.p.faas_compute_cost("aws", 1024, 0.6, 10.0)
        assert cost == pytest.approx(1.66667e-4, rel=1e-3)

    def test_gcp_bills_cpu_separately(self):
        cost = self.p.faas_compute_cost("gcp", 1024, 2.0, 10.0)
        assert cost == pytest.approx(10 * 2.5e-6 + 2.0 * 10 * 2.4e-5, rel=1e-6)

    def test_minimum_billing_duration(self):
        tiny = self.p.faas_compute_cost("aws", 1024, 0.6, 1e-9)
        assert tiny == pytest.approx(self.p.faas_compute_cost("aws", 1024, 0.6, 0.001))

    def test_vm_minimum_billed_minute(self):
        ten_s = self.p.vm_cost("aws", 10.0)
        sixty_s = self.p.vm_cost("aws", 60.0)
        assert ten_s == sixty_s == pytest.approx(1.65 / 60)

    def test_vm_per_second_after_minimum(self):
        assert self.p.vm_cost("aws", 3600.0) == pytest.approx(1.65)

    def test_dynamodb_write_price_matches_paper(self):
        # §5.1 quotes $0.6250 per million writes in us-east-1.
        assert self.p.kv["aws"].write == pytest.approx(0.625e-6)


class TestCostLedger:
    def test_charges_accumulate(self):
        ledger = CostLedger()
        ledger.charge(0.0, CostCategory.EGRESS, 0.5)
        ledger.charge(1.0, CostCategory.EGRESS, 0.25)
        assert ledger.total(CostCategory.EGRESS) == pytest.approx(0.75)
        assert ledger.total() == pytest.approx(0.75)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().charge(0.0, CostCategory.EGRESS, -1.0)

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().charge(0.0, "snacks", 1.0)

    def test_snapshot_delta(self):
        ledger = CostLedger()
        ledger.charge(0.0, CostCategory.EGRESS, 1.0)
        before = ledger.snapshot()
        ledger.charge(1.0, CostCategory.EGRESS, 0.5)
        ledger.charge(1.0, CostCategory.KV_OPS, 0.1)
        delta = before.delta(ledger.snapshot())
        assert delta.totals[CostCategory.EGRESS] == pytest.approx(0.5)
        assert delta.totals[CostCategory.KV_OPS] == pytest.approx(0.1)
        assert delta.total == pytest.approx(0.6)

    def test_entries_kept_only_when_enabled(self):
        quiet = CostLedger()
        quiet.charge(0.0, CostCategory.EGRESS, 1.0)
        assert quiet.entries == []
        chatty = CostLedger(keep_entries=True)
        chatty.charge(0.0, CostCategory.EGRESS, 1.0, "detail")
        assert len(chatty.entries) == 1
        assert chatty.entries[0].detail == "detail"

    def test_breakdown_excludes_zero(self):
        ledger = CostLedger()
        ledger.charge(0.0, CostCategory.EGRESS, 1.0)
        assert ledger.breakdown() == {CostCategory.EGRESS: 1.0}


class TestRegions:
    def test_catalog_covers_paper_regions(self):
        from repro.simcloud.regions import REGIONS

        for key in [
            "aws:us-east-1", "aws:ca-central-1", "aws:eu-west-1",
            "aws:ap-northeast-1", "azure:eastus", "azure:westus2",
            "azure:uksouth", "azure:southeastasia", "gcp:us-east1",
            "gcp:us-west1", "gcp:europe-west6", "gcp:asia-northeast1",
        ]:
            assert key in REGIONS

    def test_lookup_by_bare_name(self):
        assert get_region("eastus").provider == "azure"
        assert get_region("us-east-1").provider == "aws"

    def test_unknown_region_raises(self):
        with pytest.raises(KeyError):
            get_region("mars-north-1")

    def test_geo_distance_sane(self):
        from repro.simcloud.regions import geo_distance_km

        d = geo_distance_km(AWS_USE1, AWS_APNE1)
        assert 9_000 < d < 13_000
        assert geo_distance_km(AWS_USE1, AWS_USE1) == 0.0

    def test_regions_of(self):
        from repro.simcloud.regions import regions_of

        assert all(r.provider == "azure" for r in regions_of("azure"))
        assert len(regions_of("aws")) >= 5
