"""Additional kernel and FaaS behaviours: cancellable timers, queue
ordering, billing floors, and request-latency geometry."""

import pytest

from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.cost import CostCategory
from repro.simcloud.objectstore import Blob
from repro.simcloud.sim import Simulator

MB = 1024 * 1024


class TestTimers:
    def test_call_later_returns_cancellable_handle(self):
        sim = Simulator()
        fired = []
        timer = sim.call_later(5.0, lambda: fired.append(1))
        timer.cancel()
        sim.run()
        assert fired == []
        assert timer.cancelled

    def test_cancelled_timer_does_not_advance_clock(self):
        sim = Simulator()
        sim.call_later(1.0, lambda: None)
        late = sim.call_later(1000.0, lambda: None)
        late.cancel()
        sim.run()
        assert sim.now == 1.0

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        timer = sim.call_later(1.0, lambda: fired.append(1))
        sim.run()
        timer.cancel()
        assert fired == [1]

    def test_run_until_skips_cancelled_head(self):
        sim = Simulator()
        head = sim.call_later(1.0, lambda: None)
        head.cancel()
        fired = []
        sim.call_later(2.0, lambda: fired.append(sim.now))
        sim.run(until=3.0)
        assert fired == [2.0]
        assert sim.now == 3.0

    def test_timeout_at_absolute(self):
        sim = Simulator()

        def proc():
            yield sim.timeout_at(7.5)
            return sim.now

        assert sim.run_process(proc()) == 7.5

    def test_step_false_on_empty(self):
        assert Simulator().step() is False


class TestFaasQueueing:
    def test_queued_invocations_fifo(self):
        cloud = build_default_cloud(seed=501)
        faas = cloud.faas("aws:us-east-1")
        faas.profile = type(faas.profile)(max_concurrency=1)
        order = []

        def handler(ctx, payload):
            yield ctx.sleep(1.0)
            order.append(payload)

        faas.deploy("f", handler)

        def main():
            invocations = []
            for i in range(5):
                accepted, inv = faas.invoke("f", i)
                yield accepted
                invocations.append(inv)
            yield cloud.sim.all_of(invocations)

        cloud.sim.run_process(main())
        assert order == [0, 1, 2, 3, 4]

    def test_invoke_and_forget_runs_without_caller_latency(self):
        cloud = build_default_cloud(seed=502)
        faas = cloud.faas("aws:us-east-1")
        done = []

        def handler(ctx, payload):
            yield ctx.sleep(0.1)
            done.append(payload)

        faas.deploy("f", handler)
        faas.invoke_and_forget("f", "x")
        cloud.run()
        assert done == ["x"]

    def test_deployment_stats_accumulate(self):
        cloud = build_default_cloud(seed=503)
        faas = cloud.faas("aws:us-east-1")

        def handler(ctx, payload):
            yield ctx.sleep(0.01)

        faas.deploy("f", handler)

        def call():
            accepted, inv = faas.invoke("f", None)
            yield accepted
            yield inv

        for _ in range(3):
            cloud.sim.run_process(call())
        stats = faas.deployment_stats("f")
        assert stats["invocations"] == 3
        assert stats["cold_starts"] + stats["warm_starts"] == 3


class TestBillingDetails:
    def test_compute_cost_scales_with_duration(self):
        cloud = build_default_cloud(seed=504)
        faas = cloud.faas("aws:us-east-1")

        def make(duration):
            def handler(ctx, payload):
                yield ctx.sleep(duration)

            return handler

        faas.deploy("short", make(1.0))
        faas.deploy("long", make(10.0))

        def call(name):
            before = cloud.ledger.total(CostCategory.FAAS_COMPUTE)
            accepted, inv = faas.invoke(name, None)

            def main():
                yield accepted
                yield inv

            cloud.sim.run_process(main())
            return cloud.ledger.total(CostCategory.FAAS_COMPUTE) - before

        assert call("long") > 5 * call("short")

    def test_pipelined_upload_skips_handshake_but_bills_request(self):
        cloud = build_default_cloud(seed=505)
        faas = cloud.faas("aws:us-east-1")
        local = cloud.bucket("aws:us-east-1", "local")
        peer = cloud.bucket("aws:us-east-2", "peer")
        durations = {}

        def handler(ctx, payload):
            blob = Blob.fresh(8 * MB)
            upload = yield from ctx.initiate_multipart(peer, "k")
            # Warm the client so S is paid before timing starts.
            yield from ctx.get_object(local, "seed", 0, 1)
            t0 = ctx.now
            yield from ctx.upload_part(peer, upload, 1, blob.slice(0, 4 * MB),
                                       pipelined=payload["pipelined"])
            durations[payload["pipelined"]] = ctx.now - t0
            yield from ctx.upload_part(peer, upload, 2,
                                       blob.slice(4 * MB, 4 * MB))
            yield from ctx.complete_multipart(peer, upload)

        local.put_object("seed", Blob.fresh(1024), 0.0, notify=False)
        faas.deploy("f", handler)

        def call(pipelined):
            accepted, inv = faas.invoke("f", {"pipelined": pipelined})

            def main():
                yield accepted
                yield inv

            cloud.sim.run_process(main())

        before = cloud.ledger.total(CostCategory.STORAGE_REQUESTS)
        call(True)
        call(False)
        assert durations[True] < durations[False]
        # Requests billed in both modes.
        assert cloud.ledger.total(CostCategory.STORAGE_REQUESTS) > before

    def test_request_latency_grows_with_distance(self):
        cloud = build_default_cloud(seed=506)
        faas = cloud.faas("aws:us-east-1")
        near = cloud.bucket("aws:us-east-2", "near")
        far = cloud.bucket("aws:ap-northeast-1", "far")
        near.put_object("k", Blob.fresh(1), 0.0, notify=False)
        far.put_object("k", Blob.fresh(1), 0.0, notify=False)
        samples = {"near": [], "far": []}

        def handler(ctx, payload):
            yield from ctx.get_object(near, "k", 0, 1)  # pay S
            for name, bucket in (("near", near), ("far", far)):
                for _ in range(10):
                    t0 = ctx.now
                    yield from ctx.head_object(bucket, "k")
                    samples[name].append(ctx.now - t0)

        faas.deploy("f", handler)

        def main():
            accepted, inv = faas.invoke("f", None)
            yield accepted
            yield inv

        cloud.sim.run_process(main())
        assert (sum(samples["far"]) / len(samples["far"])
                > sum(samples["near"]) / len(samples["near"]))
