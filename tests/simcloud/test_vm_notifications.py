"""Tests for the VM fleet, notification bus, workflow timers, and the
cloud facade."""

import numpy as np
import pytest

from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.cost import CostCategory
from repro.simcloud.objectstore import Blob

MB = 10**6


@pytest.fixture
def cloud():
    return build_default_cloud(seed=5)


class TestVmFleet:
    def test_provisioning_takes_tens_of_seconds(self, cloud):
        fleet = cloud.vm_fleet("aws:us-east-1")

        def main():
            vm = yield cloud.sim.spawn(fleet.provision())
            return vm, cloud.now

        vm, elapsed = cloud.sim.run_process(main())
        # VM provisioning (~31 s) + container startup (~26 s): Fig 4.
        assert 40 < elapsed < 90
        assert vm.alive

    def test_azure_provisioning_slower_than_aws(self):
        def provision_time(region, seed):
            cloud = build_default_cloud(seed=seed)
            fleet = cloud.vm_fleet(region)

            def main():
                yield cloud.sim.spawn(fleet.provision())
                return cloud.now

            return cloud.sim.run_process(main())

        aws = np.mean([provision_time("aws:us-east-1", s) for s in range(5)])
        azure = np.mean([provision_time("azure:eastus", s) for s in range(5)])
        assert azure > aws

    def test_terminate_bills_with_minimum(self, cloud):
        fleet = cloud.vm_fleet("aws:us-east-1")

        def main():
            vm = yield cloud.sim.spawn(fleet.provision())
            yield cloud.sim.sleep(1.0)
            vm.terminate()
            return vm

        vm = cloud.sim.run_process(main())
        assert not vm.alive
        cost = cloud.ledger.total(CostCategory.VM_COMPUTE)
        assert cost >= 1.65 * 60 / 3600  # at least the 60 s minimum

    def test_double_terminate_bills_once(self, cloud):
        fleet = cloud.vm_fleet("aws:us-east-1")

        def main():
            vm = yield cloud.sim.spawn(fleet.provision())
            vm.terminate()
            before = cloud.ledger.total(CostCategory.VM_COMPUTE)
            vm.terminate()
            return before

        before = cloud.sim.run_process(main())
        assert cloud.ledger.total(CostCategory.VM_COMPUTE) == before

    def test_vm_faster_than_single_function(self, cloud):
        """A VM gateway multiplexes streams, beating one function's NIC."""
        from repro.simcloud.network import BEST_CONFIGS

        fleet = cloud.vm_fleet("aws:us-east-1")
        dst = cloud.region("aws:ca-central-1")

        def main():
            vm = yield cloud.sim.spawn(fleet.provision())
            return vm

        vm = cloud.sim.run_process(main())
        vm_times = [vm.wan_seconds(dst, 100 * MB, upload=True) for _ in range(30)]
        func_mbps = cloud.fabric.path_mbps(
            cloud.region("aws:us-east-1"), dst, BEST_CONFIGS["aws"], upload=True
        )
        func_time = 100 * MB * 8 / (func_mbps * 1e6)
        assert np.mean(vm_times) < func_time


class TestNotificationBus:
    def test_events_delivered_with_delay(self, cloud):
        bucket = cloud.bucket("aws:us-east-1", "b")
        received = []
        cloud.notifications.connect(bucket, lambda ev: received.append((cloud.now, ev)))
        bucket.put_object("k", Blob.fresh(10), cloud.now)
        cloud.run()
        assert len(received) == 1
        arrival, event = received[0]
        assert arrival > event.event_time
        assert event.key == "k"

    def test_delay_roughly_subsecond(self, cloud):
        bucket = cloud.bucket("aws:us-east-1", "b")
        arrivals = []
        cloud.notifications.connect(bucket, lambda ev: arrivals.append(cloud.now - ev.event_time))
        for i in range(200):
            bucket.put_object(f"k{i}", Blob.fresh(1), cloud.now)
        cloud.run()
        assert 0.2 < np.mean(arrivals) < 1.0

    def test_azure_notifications_slower_than_aws(self, cloud):
        aws_b = cloud.bucket("aws:us-east-1", "a")
        az_b = cloud.bucket("azure:eastus", "z")
        delays = {"aws": [], "azure": []}
        cloud.notifications.connect(aws_b, lambda ev: delays["aws"].append(cloud.now - ev.event_time))
        cloud.notifications.connect(az_b, lambda ev: delays["azure"].append(cloud.now - ev.event_time))
        for i in range(100):
            aws_b.put_object(f"k{i}", Blob.fresh(1), cloud.now)
            az_b.put_object(f"k{i}", Blob.fresh(1), cloud.now)
        cloud.run()
        assert np.mean(delays["azure"]) > np.mean(delays["aws"])

    def test_delivery_counter(self, cloud):
        bucket = cloud.bucket("aws:us-east-1", "b")
        cloud.notifications.connect(bucket, lambda ev: None)
        bucket.put_object("k", Blob.fresh(1), cloud.now)
        bucket.delete_object("k", cloud.now)
        cloud.run()
        assert cloud.notifications.delivered == 2


class TestWorkflowTimers:
    def test_schedule_after_fires_once(self, cloud):
        timers = cloud.timers("aws:us-east-1")
        fired = []
        timers.schedule_after(30.0, lambda: fired.append(cloud.now))
        cloud.run()
        assert fired == [30.0]
        assert timers.scheduled == 1

    def test_schedule_at_past_clamps_to_now(self, cloud):
        timers = cloud.timers("aws:us-east-1")
        cloud.sim.call_later(10.0, lambda: None)
        cloud.run()
        fired = []
        timers.schedule_at(5.0, lambda: fired.append(cloud.now))
        cloud.run()
        assert fired == [10.0]

    def test_timers_billed(self, cloud):
        timers = cloud.timers("aws:us-east-1")
        timers.schedule_after(1.0, lambda: None)
        assert cloud.ledger.total(CostCategory.WORKFLOW) > 0


class TestCloudFacade:
    def test_buckets_cached(self, cloud):
        assert cloud.bucket("aws:us-east-1", "b") is cloud.bucket("aws:us-east-1", "b")

    def test_versioning_conflict_detected(self, cloud):
        cloud.bucket("aws:us-east-1", "b", versioning=False)
        with pytest.raises(ValueError):
            cloud.bucket("aws:us-east-1", "b", versioning=True)

    def test_faas_cached_per_region(self, cloud):
        assert cloud.faas("aws:us-east-1") is cloud.faas("aws:us-east-1")
        assert cloud.faas("aws:us-east-1") is not cloud.faas("azure:eastus")

    def test_same_seed_reproducible_end_to_end(self):
        def run_once(seed):
            cloud = build_default_cloud(seed=seed)
            bucket = cloud.bucket("aws:us-east-1", "b")
            arrivals = []
            cloud.notifications.connect(bucket, lambda ev: arrivals.append(cloud.now))
            bucket.put_object("k", Blob.fresh(1), 0.0)
            cloud.run()
            return arrivals

        assert run_once(11) == run_once(11)
        assert run_once(11) != run_once(12)

    def test_all_region_keys_sorted(self, cloud):
        keys = cloud.all_region_keys()
        assert keys == sorted(keys)
        assert "aws:us-east-1" in keys
