"""Tests for the simulated serverless NoSQL database."""

import pytest

from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.cost import CostCategory
from repro.simcloud.kvstore import ConditionFailed


@pytest.fixture
def cloud():
    return build_default_cloud(seed=1)


@pytest.fixture
def table(cloud):
    return cloud.kv_table("aws:us-east-1", "state")


def run(cloud, gen):
    return cloud.sim.run_process(gen)


class TestPointOps:
    def test_put_then_get(self, cloud, table):
        def flow():
            yield table.put_item("k", {"x": 1})
            item = yield table.get_item("k")
            return item

        assert run(cloud, flow()) == {"x": 1}

    def test_get_missing_returns_none(self, cloud, table):
        def flow():
            return (yield table.get_item("nope"))

        assert run(cloud, flow()) is None

    def test_get_returns_copy(self, cloud, table):
        def flow():
            yield table.put_item("k", {"x": 1})
            item = yield table.get_item("k")
            item["x"] = 99
            return (yield table.get_item("k"))

        assert run(cloud, flow()) == {"x": 1}

    def test_delete(self, cloud, table):
        def flow():
            yield table.put_item("k", {"x": 1})
            yield table.delete_item("k")
            return (yield table.get_item("k"))

        assert run(cloud, flow()) is None

    def test_operations_take_time(self, cloud, table):
        def flow():
            yield table.put_item("k", {"x": 1})
            yield table.get_item("k")

        run(cloud, flow())
        assert cloud.now > 0.0
        assert cloud.now < 0.1  # single-digit-ms latencies


class TestAtomics:
    def test_conditional_put_success(self, cloud, table):
        def flow():
            ok = yield table.conditional_put("k", {"v": 1}, lambda cur: cur is None)
            return ok

        assert run(cloud, flow()) is True

    def test_conditional_put_failure_raises(self, cloud, table):
        def flow():
            yield table.put_item("k", {"v": 1})
            try:
                yield table.conditional_put("k", {"v": 2}, lambda cur: cur is None)
            except ConditionFailed:
                return "failed"
            return "succeeded"

        assert run(cloud, flow()) == "failed"

    def test_put_if_absent(self, cloud, table):
        def flow():
            first = yield table.put_if_absent("k", {"v": 1})
            second = yield table.put_if_absent("k", {"v": 2})
            item = yield table.get_item("k")
            return first, second, item

        first, second, item = run(cloud, flow())
        assert first is True and second is False
        assert item == {"v": 1}

    def test_concurrent_put_if_absent_single_winner(self, cloud, table):
        """The lock-acquisition race: exactly one concurrent claimant wins."""
        results = []

        def claimant(i):
            won = yield table.put_if_absent("lock", {"owner": i})
            results.append((i, won))

        def main():
            procs = [cloud.sim.spawn(claimant(i)) for i in range(10)]
            yield cloud.sim.all_of(procs)

        run(cloud, main())
        winners = [i for i, won in results if won]
        assert len(winners) == 1

    def test_increment_counter(self, cloud, table):
        def flow():
            values = []
            for _ in range(3):
                v = yield table.increment("task", "done")
                values.append(v)
            return values

        assert run(cloud, flow()) == [1, 2, 3]

    def test_increment_concurrent_no_lost_updates(self, cloud, table):
        def bump():
            yield table.increment("c", "n")

        def main():
            yield cloud.sim.all_of([cloud.sim.spawn(bump()) for _ in range(50)])

        run(cloud, main())
        assert table.peek("c")["n"] == 50

    def test_update_item_read_modify_write(self, cloud, table):
        def flow():
            yield table.put_item("k", {"n": 1})
            updated = yield table.update_item("k", lambda cur: {"n": cur["n"] + 10})
            return updated

        assert run(cloud, flow()) == {"n": 11}

    def test_update_item_delete_via_none(self, cloud, table):
        def flow():
            yield table.put_item("k", {"n": 1})
            yield table.update_item("k", lambda cur: None)
            return (yield table.get_item("k"))

        assert run(cloud, flow()) is None


class TestMetering:
    def test_ops_charged(self, cloud, table):
        def flow():
            yield table.put_item("k", {"x": 1})
            yield table.get_item("k")

        run(cloud, flow())
        assert cloud.ledger.total(CostCategory.KV_OPS) > 0
        assert table.op_counts == {"read": 1, "write": 1}

    def test_write_costs_more_than_read(self, cloud):
        t = cloud.kv_table("aws:us-east-1", "t2")

        def writes():
            for _ in range(100):
                yield t.put_item("k", {})

        def reads():
            for _ in range(100):
                yield t.get_item("k")

        before = cloud.ledger.snapshot()
        run(cloud, writes())
        mid = cloud.ledger.snapshot()
        run(cloud, reads())
        after = cloud.ledger.snapshot()
        write_cost = before.delta(mid).total
        read_cost = mid.delta(after).total
        assert write_cost > read_cost

    def test_tables_cached_per_region_name(self, cloud):
        a = cloud.kv_table("aws:us-east-1", "x")
        b = cloud.kv_table("aws:us-east-1", "x")
        c = cloud.kv_table("aws:us-east-2", "x")
        assert a is b
        assert a is not c
