"""Differential suite: timer-wheel kernel vs. legacy heap kernel.

The wheel/slab kernel (``Simulator(kernel="wheel")``, the default) and
the legacy tombstoned-heap kernel (``kernel="heap"``, kept exactly for
this suite) must be observationally identical: byte-identical event
order, chaos statistics, and cost ledgers for the same seed.  Any
divergence means the wheel broke the (time, seq) tie-break contract or
the slab recycled a record that was still live.
"""

import itertools

import pytest

from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud import objectstore
from repro.simcloud.chaos import ChaosConfig
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob
from repro.simcloud.sim import HeapSimulator, Simulator

KB = 1024
MB = 1024 * 1024

SEEDS = (0, 1, 2)


def _kernel_trace(kernel: str):
    """A raw-kernel scenario touching every scheduling path: timers
    (fired and cancelled), ring entries, sleeps short and far-future,
    interrupts, and futures."""
    sim = Simulator(kernel=kernel)
    order = []

    def worker(tag, delay):
        yield sim.sleep(delay)
        order.append((sim.now, f"wake:{tag}"))
        yield sim.sleep(0.0)
        order.append((sim.now, f"ring:{tag}"))
        yield sim.sleep(delay * 3.0)
        order.append((sim.now, f"done:{tag}"))

    for i in range(40):
        sim.spawn(worker(i, 0.05 + i * 0.037))
    timers = []
    for i in range(200):
        timers.append(sim.call_later(
            0.01 + (i % 17) * 0.31, lambda i=i: order.append(
                (sim.now, f"timer:{i}"))))
    for i, t in enumerate(timers):
        if i % 3 == 0:
            t.cancel()
    # A far-future event that lands in the overflow heap, and one that
    # is cancelled so it must not drag the clock.
    sim.call_later(2000.0, lambda: order.append((sim.now, "far")))
    sim.call_later(5000.0, lambda: None).cancel()

    def sleeper():
        try:
            yield sim.sleep(300.0)
            order.append((sim.now, "overslept"))
        except Exception:  # noqa: BLE001  (Interrupt)
            order.append((sim.now, "interrupted"))
            yield sim.sleep(0.5)
            order.append((sim.now, "resumed"))

    proc = sim.spawn(sleeper())
    sim.call_later(1.5, lambda: proc.interrupt("cut"))
    sim.run()
    return order, sim.now


def _replication_run(seed: int, kernel: str):
    """A Fig-12-shaped replication: one multipart object plus a spread
    of small ones through the full lock/pool/finalize protocol."""
    objectstore._fresh_counter = itertools.count()
    cloud = build_default_cloud(seed=seed, kernel=kernel)
    config = ReplicaConfig(slo_seconds=0.0, profile_samples=5,
                           mc_samples=300)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("azure:eastus", "dst")
    svc.add_rule(src, dst)
    src.put_object("big", Blob.fresh(256 * MB), cloud.now)
    for i in range(4):
        src.put_object(f"small-{i}", Blob.fresh((i + 1) * 64 * KB),
                       cloud.now + 0.2 * i)
    cloud.run()
    return (
        [(r.key, r.seq, r.kind, r.event_time, r.visible_time, r.plan_n)
         for r in svc.records],
        sorted(cloud.ledger.breakdown().items()),
        cloud.now,
    )


def _chaos_run(seed: int, kernel: str):
    """A fault storm over a seeded workload; compares injected-fault
    counters (chaos stats), delays, and the cost ledger."""
    objectstore._fresh_counter = itertools.count()
    cloud = build_default_cloud(seed=seed, kernel=kernel)
    svc = AReplicaService(cloud, ReplicaConfig(profile_samples=4,
                                               mc_samples=300))
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("azure:eastus", "dst")
    svc.add_rule(src, dst)
    cloud.apply_chaos(ChaosConfig(
        crash_prob=0.05, notif_drop_prob=0.05, notif_dup_prob=0.05,
        notif_redelivery_s=10.0, kv_reject_prob=0.05, kv_delay_prob=0.05,
        wan_stall_prob=0.02))
    rng = cloud.rngs.stream("diff-workload")
    t = 1.0
    for i in range(12):
        t += float(rng.exponential(1.5))
        size = int(rng.integers(1, 48)) * KB
        cloud.sim.call_later(t, lambda i=i, s=size: src.put_object(
            f"obj{i % 4}", Blob.fresh(s), cloud.sim.now))
    cloud.run()
    cloud.apply_chaos(None)
    svc.run_to_convergence()
    return (
        cloud.chaos_stats(),
        svc.delays(),
        sorted(cloud.ledger.breakdown().items()),
        cloud.now,
    )


class TestKernelSelection:
    def test_default_is_wheel(self):
        assert not isinstance(Simulator(), HeapSimulator)

    def test_heap_flag_selects_legacy_kernel(self):
        assert isinstance(Simulator(kernel="heap"), HeapSimulator)
        assert isinstance(build_default_cloud(seed=0, kernel="heap").sim,
                          HeapSimulator)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            Simulator(kernel="quantum")


class TestRawKernelDifferential:
    def test_event_order_identical(self):
        wheel = _kernel_trace("wheel")
        heap = _kernel_trace("heap")
        assert wheel == heap
        order, now = wheel
        assert ("interrupted" in {tag for _, tag in order})
        assert now == 2000.0  # the uncancelled far-future timer fired


@pytest.mark.parametrize("seed", SEEDS)
class TestEndToEndDifferential:
    def test_replication_identical(self, seed):
        wheel = _replication_run(seed, "wheel")
        heap = _replication_run(seed, "heap")
        assert wheel == heap
        records, ledger, _now = wheel
        assert records, "scenario produced no replications"
        assert ledger, "scenario produced no costs"

    def test_chaos_stats_identical(self, seed):
        wheel = _chaos_run(seed, "wheel")
        heap = _chaos_run(seed, "heap")
        assert wheel == heap
        stats, delays, ledger, _now = wheel
        assert sum(stats.values()) > 0, "storm injected nothing"
        assert delays, "workload replicated nothing"
