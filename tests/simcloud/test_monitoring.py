"""Tests for the cloud monitoring time series."""

import math

import pytest

from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.monitoring import CloudMonitor, TimeSeries
from repro.simcloud.objectstore import Blob
from repro.simcloud.sim import Simulator

MB = 1024 * 1024


class TestTimeSeries:
    def test_record_and_stats(self):
        ts = TimeSeries("x")
        for t, v in [(0, 1.0), (1, 3.0), (2, 2.0)]:
            ts.record(t, v)
        assert len(ts) == 3
        assert ts.latest == 2.0
        assert ts.peak == 3.0
        assert ts.mean() == pytest.approx(2.0)

    def test_time_must_not_go_backwards(self):
        ts = TimeSeries("x")
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_step_interpolation(self):
        ts = TimeSeries("x")
        ts.record(0.0, 10.0)
        ts.record(10.0, 20.0)
        assert ts.at(5.0) == 10.0
        assert ts.at(10.0) == 20.0
        assert math.isnan(ts.at(-1.0))

    def test_window_max(self):
        ts = TimeSeries("x")
        for t in range(10):
            ts.record(float(t), float(t % 4))
        assert ts.window_max(2.0, 5.0) == 3.0
        assert math.isnan(ts.window_max(100.0, 200.0))

    def test_empty_series(self):
        ts = TimeSeries("x")
        assert math.isnan(ts.latest)
        assert math.isnan(ts.peak)
        assert math.isnan(ts.mean())

    def test_strip_renders(self):
        ts = TimeSeries("load")
        for t in range(5):
            ts.record(float(t), float(t))
        assert "load" in ts.strip(width=10)

    def test_discard_before_prunes_the_prefix(self):
        ts = TimeSeries("x")
        for t in range(10):
            ts.record(float(t), float(t))
        ts.discard_before(4.0)
        assert ts.times == [float(t) for t in range(4, 10)]
        assert ts.values == [float(t) for t in range(4, 10)]
        ts.discard_before(3.0)     # before the head: no-op
        assert len(ts) == 6

    def test_window_percentile_shares_the_fail_closed_path(self):
        """The accessor mirrors analysis.stats.latest_window_percentile
        exactly — including the None sentinel on a cold window, never a
        NaN — because both the hedge deadline and the autopilot's SLO
        error branch on its result."""
        from repro.analysis.stats import latest_window_percentile
        ts = TimeSeries("x")
        for t in range(10):
            ts.record(float(t), float(t))
        assert ts.window_percentile(0.5, 4.0, 9.0) == \
            latest_window_percentile(ts.times, ts.values, 0.5, 4.0, 9.0)
        assert ts.window_percentile(0.99, 1.0, 100.0) is None   # cold
        assert TimeSeries("empty").window_percentile(
            0.99, 10.0, 0.0) is None


class TestCloudMonitor:
    def test_samples_at_interval(self):
        sim = Simulator()
        mon = CloudMonitor(sim, interval_s=5.0)
        clock = mon.add_probe("clock", lambda: sim.now)
        mon.start(duration_s=20.0)
        sim.run()
        assert clock.times == [0.0, 5.0, 10.0, 15.0, 20.0]
        assert sim.now == 20.0  # bounded: does not run forever

    def test_stop_ends_sampling(self):
        sim = Simulator()
        mon = CloudMonitor(sim, interval_s=1.0)
        series = mon.add_probe("x", lambda: 1.0)
        mon.start(duration_s=100.0)
        sim.call_later(3.5, mon.stop)
        sim.run()
        assert len(series) <= 5

    def test_duplicate_probe_rejected(self):
        mon = CloudMonitor(Simulator())
        mon.add_probe("x", lambda: 0.0)
        with pytest.raises(ValueError):
            mon.add_probe("x", lambda: 0.0)

    def test_invalid_interval_and_duration(self):
        with pytest.raises(ValueError):
            CloudMonitor(Simulator(), interval_s=0)
        mon = CloudMonitor(Simulator())
        with pytest.raises(ValueError):
            mon.start(duration_s=0)

    def test_double_start_rejected(self):
        sim = Simulator()
        mon = CloudMonitor(sim)
        mon.start(duration_s=10.0)
        with pytest.raises(RuntimeError):
            mon.start(duration_s=10.0)

    def test_retention_window_bounds_series_memory(self):
        """With ``retention_s`` set, every sampling tick prunes samples
        older than the trailing window, so a long run holds a bounded
        slice instead of growing every probe series without limit."""
        sim = Simulator()
        mon = CloudMonitor(sim, interval_s=1.0, retention_s=5.0)
        clock = mon.add_probe("clock", lambda: sim.now)
        mon.start(duration_s=100.0)
        sim.run()
        assert clock.times[0] == 95.0 and clock.times[-1] == 100.0
        assert len(clock) == 6          # the window, not the whole run
        assert mon.retention_s == 5.0

    def test_retention_defaults_off_and_validates(self):
        sim = Simulator()
        mon = CloudMonitor(sim, interval_s=1.0)     # keep everything
        series = mon.add_probe("x", lambda: 0.0)
        mon.start(duration_s=50.0)
        sim.run()
        assert len(series) == 51
        with pytest.raises(ValueError):
            CloudMonitor(sim, retention_s=0.0)

    def test_watch_replication_workload(self):
        """End to end: concurrency, backlog, and cost series during a
        replication burst."""
        cloud = build_default_cloud(seed=901)
        svc = AReplicaService(cloud, ReplicaConfig(profile_samples=5,
                                                   mc_samples=300))
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("azure:eastus", "dst")
        svc.add_rule(src, dst)
        mon = CloudMonitor(cloud.sim, interval_s=0.5)
        mon.watch_faas(cloud.faas("aws:us-east-1"))
        mon.watch_service(svc)
        mon.watch_ledger(cloud.ledger)
        mon.start(duration_s=60.0)
        for i in range(6):
            src.put_object(f"k{i}", Blob.fresh(64 * MB), cloud.now)
        cloud.run()
        running = mon.series["aws:us-east-1.running"]
        backlog = mon.series["backlog"]
        cost = mon.series["cost"]
        assert running.peak >= 1           # instances spun up
        assert backlog.peak >= 1           # work was in flight
        assert backlog.latest == 0         # and drained
        assert cost.values == sorted(cost.values)  # monotone spend
        assert "backlog" in mon.report()
