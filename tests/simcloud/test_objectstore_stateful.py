"""Model-based (stateful hypothesis) test of the object store.

Drives a :class:`Bucket` with random interleavings of PUT / DELETE /
COPY / ranged GET / multipart operations while maintaining a reference
model (a plain dict of key → Blob), asserting after every step that the
bucket's visible state, ETags, byte totals, and event stream match the
model.  This is the consistency bedrock the replication engine builds
on.
"""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.simcloud.objectstore import Blob, Bucket
from repro.simcloud.regions import get_region

KEYS = [f"k{i}" for i in range(6)]


class BucketMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.bucket = Bucket("b", get_region("aws:us-east-1"))
        self.model: dict[str, Blob] = {}
        self.clock = 0.0
        self.events: list[tuple[str, str]] = []
        self.bucket.subscribe(lambda ev: self.events.append((ev.kind, ev.key)))
        self.expected_events: list[tuple[str, str]] = []

    def _tick(self) -> float:
        self.clock += 1.0
        return self.clock

    @rule(key=st.sampled_from(KEYS), size=st.integers(1, 10_000))
    def put(self, key, size):
        blob = Blob.fresh(size)
        self.bucket.put_object(key, blob, self._tick())
        self.model[key] = blob
        self.expected_events.append(("created", key))

    @rule(key=st.sampled_from(KEYS))
    def delete(self, key):
        self.bucket.delete_object(key, self._tick())
        if key in self.model:
            del self.model[key]
            self.expected_events.append(("deleted", key))

    @rule(src=st.sampled_from(KEYS), dst=st.sampled_from(KEYS))
    def copy(self, src, dst):
        if src not in self.model:
            return
        self.bucket.copy_object(src, dst, self._tick())
        self.model[dst] = self.model[src]
        self.expected_events.append(("created", dst))

    @rule(key=st.sampled_from(KEYS), data=st.data())
    def ranged_get_matches_model(self, key, data):
        if key not in self.model:
            return
        blob = self.model[key]
        off = data.draw(st.integers(0, blob.size - 1))
        length = data.draw(st.integers(1, blob.size - off))
        piece, version = self.bucket.get_object(key, off, length)
        assert piece == blob.slice(off, length)
        assert version.etag == blob.etag

    @rule(key=st.sampled_from(KEYS), parts=st.integers(1, 5),
          size=st.integers(5, 5_000))
    def multipart_roundtrip(self, key, parts, size):
        blob = Blob.fresh(size)
        upload = self.bucket.initiate_multipart(key)
        part_size = math.ceil(size / parts)
        for i, off in enumerate(range(0, size, part_size), start=1):
            self.bucket.upload_part(upload, i,
                                    blob.slice(off, min(part_size, size - off)))
        self.bucket.complete_multipart(upload, self._tick())
        self.model[key] = blob
        self.expected_events.append(("created", key))

    @rule(key=st.sampled_from(KEYS))
    def concat_self(self, key):
        if key not in self.model:
            return
        base = self.model[key]
        doubled = Blob.concat([base, base])
        self.bucket.put_object(key, doubled, self._tick())
        self.model[key] = doubled
        self.expected_events.append(("created", key))

    # -- invariants -----------------------------------------------------------

    @invariant()
    def keys_match_model(self):
        assert set(self.bucket.keys()) == set(self.model)

    @invariant()
    def etags_match_model(self):
        for key, blob in self.model.items():
            assert self.bucket.head(key).etag == blob.etag

    @invariant()
    def total_bytes_match_model(self):
        assert self.bucket.total_bytes() == sum(b.size for b in self.model.values())

    @invariant()
    def event_stream_matches(self):
        assert self.events == self.expected_events

    @invariant()
    def sequencers_strictly_increase(self):
        seqs = [self.bucket.head(k).sequencer for k in self.bucket.keys()]
        assert len(seqs) == len(set(seqs))


TestBucketStateMachine = BucketMachine.TestCase
TestBucketStateMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
