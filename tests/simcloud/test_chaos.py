"""Unit tests for the cross-substrate fault-injection layer."""

import pytest

from repro.core.retry import RetryPolicy
from repro.simcloud.chaos import ChaosConfig
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.kvstore import Throttled
from repro.simcloud.objectstore import Blob


class TestChaosConfig:
    def test_defaults_are_fully_disabled(self):
        chaos = ChaosConfig()
        assert not chaos.enabled
        assert not chaos.faas_enabled
        assert not chaos.notifications_enabled
        assert not chaos.kv_enabled
        assert not chaos.wan_enabled

    def test_enabled_flags_follow_their_substrate(self):
        assert ChaosConfig(crash_prob=0.1).faas_enabled
        assert ChaosConfig(notif_dup_prob=0.1).notifications_enabled
        assert ChaosConfig(kv_delay_prob=0.1).kv_enabled
        assert ChaosConfig(wan_stall_prob=0.1).wan_enabled
        assert ChaosConfig(wan_blackout_windows=((5.0, 2.0),)).wan_enabled
        chaos = ChaosConfig(notif_drop_prob=0.2)
        assert chaos.enabled and not chaos.kv_enabled

    def test_probabilities_must_leave_room_for_success(self):
        # 1.0 would mean "never delivered / never admitted" and break the
        # at-least-once guarantee, so it is rejected outright.
        with pytest.raises(ValueError):
            ChaosConfig(notif_drop_prob=1.0)
        with pytest.raises(ValueError):
            ChaosConfig(kv_reject_prob=-0.1)
        with pytest.raises(ValueError):
            ChaosConfig(crash_mean_delay_s=-1.0)
        with pytest.raises(ValueError):
            ChaosConfig(wan_blackout_windows=((3.0, 0.0),))


class TestRetryPolicy:
    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(base_s=0.1, multiplier=2.0, cap_s=1.0,
                             jitter=0.0)
        raw = [policy.backoff_s(a) for a in range(6)]
        assert raw == sorted(raw)
        assert raw[0] == pytest.approx(0.1)
        assert raw[-1] == pytest.approx(1.0)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_s=0.2, multiplier=2.0, cap_s=5.0,
                             jitter=0.5)
        rng = build_default_cloud(seed=0).rngs.stream("jitter-test")
        for attempt in range(5):
            raw = policy.nominal_s(attempt)
            for _ in range(20):
                got = policy.backoff_s(attempt, rng)
                assert raw * 0.5 <= got <= raw

    def test_jittered_policy_refuses_missing_rng(self):
        # The old behavior fell back to the raw schedule, silently
        # re-synchronizing the retry herd the jitter exists to spread.
        policy = RetryPolicy(jitter=0.5)
        with pytest.raises(ValueError):
            policy.backoff_s(0)
        # A jitter-free policy never needed an rng and still doesn't.
        assert RetryPolicy(jitter=0.0).backoff_s(0) == \
            RetryPolicy(jitter=0.0).nominal_s(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=-1)


class TestKvChaos:
    def test_rejection_is_pre_admission(self):
        """A throttled write must raise without mutating anything."""
        cloud = build_default_cloud(seed=4)
        table = cloud.kv_table("aws:us-east-1", "t")
        table.set_chaos(ChaosConfig(kv_reject_prob=0.95),
                        cloud.rngs.stream("test-kv"))
        outcomes = []

        def writer():
            for i in range(30):
                try:
                    yield table.put_item("x", {"v": i})
                    outcomes.append(("ok", i))
                except Throttled:
                    outcomes.append(("throttled", i))

        cloud.sim.run_process(writer())
        rejected = [i for kind, i in outcomes if kind == "throttled"]
        accepted = [i for kind, i in outcomes if kind == "ok"]
        assert rejected and table.chaos_rejected == len(rejected)
        # The stored value reflects only *accepted* writes.
        expected = {"v": accepted[-1]} if accepted else None
        assert table.peek("x") == expected

    def test_reads_are_never_rejected(self):
        cloud = build_default_cloud(seed=4)
        table = cloud.kv_table("aws:us-east-1", "t")
        table.set_chaos(ChaosConfig(kv_reject_prob=0.95),
                        cloud.rngs.stream("test-kv"))

        def reader():
            for _ in range(20):
                yield table.get_item("missing")

        cloud.sim.run_process(reader())
        assert table.chaos_rejected == 0

    def test_admission_delay_applies_late_but_applies(self):
        cloud = build_default_cloud(seed=4)
        table = cloud.kv_table("aws:us-east-1", "t")
        table.set_chaos(ChaosConfig(kv_delay_prob=0.95, kv_delay_mean_s=2.0),
                        cloud.rngs.stream("test-kv"))
        times = []

        def writer():
            for i in range(10):
                yield table.put_item(f"k{i}", {"v": i})
                times.append(cloud.sim.now)

        cloud.sim.run_process(writer())
        assert table.chaos_delayed > 0
        assert all(table.peek(f"k{i}") == {"v": i} for i in range(10))
        # Delays are real simulated time, far above the baseline latency.
        assert times[-1] > 1.0

    def test_chaos_off_leaves_counters_untouched(self):
        cloud = build_default_cloud(seed=4)
        table = cloud.kv_table("aws:us-east-1", "t")

        def writer():
            yield table.put_item("x", {"v": 1})

        cloud.sim.run_process(writer())
        assert table.chaos_rejected == table.chaos_delayed == 0
        assert table.peek("x") == {"v": 1}


class TestNotificationChaos:
    def _deliveries(self, chaos, puts=25, seed=5):
        cloud = build_default_cloud(seed=seed)
        cloud.apply_chaos(chaos)
        src = cloud.bucket("aws:us-east-1", "src")
        seen = []
        cloud.notifications.connect(src, lambda e: seen.append(e.sequencer))
        for i in range(puts):
            src.put_object(f"k{i}", Blob.fresh(64), cloud.now)
        cloud.run()
        return cloud, seen

    def test_drop_means_delayed_redelivery_not_loss(self):
        cloud, seen = self._deliveries(
            ChaosConfig(notif_drop_prob=0.9, notif_redelivery_s=30.0))
        assert len(seen) == 25                       # at-least-once
        assert cloud.notifications.chaos_dropped > 0
        assert cloud.now > 30.0                      # redeliveries took time

    def test_duplicates_inflate_delivery_count(self):
        cloud, seen = self._deliveries(ChaosConfig(notif_dup_prob=0.9))
        assert cloud.notifications.chaos_duplicated > 0
        assert len(seen) == 25 + cloud.notifications.chaos_duplicated
        assert set(seen) == set(range(1, 26))

    def test_reordering_scrambles_arrival_order(self):
        cloud, seen = self._deliveries(
            ChaosConfig(notif_reorder_prob=0.9, notif_reorder_spread_s=20.0))
        assert cloud.notifications.chaos_reordered > 0
        assert len(seen) == 25
        assert seen != sorted(seen)


class TestWanChaos:
    def test_blackout_penalty_is_window_remainder(self):
        cloud = build_default_cloud(seed=6)
        fabric = cloud.fabric
        fabric.set_chaos(ChaosConfig(wan_blackout_windows=((10.0, 5.0),)),
                         cloud.rngs.stream("test-wan"), clock=lambda: 0.0)
        assert fabric.chaos_penalty_s(12.0) == pytest.approx(3.0)
        assert fabric.chaos_penalty_s(20.0) == 0.0
        assert fabric.chaos_blackouts == 1

    def test_stalls_are_sampled(self):
        cloud = build_default_cloud(seed=6)
        fabric = cloud.fabric
        fabric.set_chaos(ChaosConfig(wan_stall_prob=0.9, wan_stall_mean_s=4.0),
                         cloud.rngs.stream("test-wan"), clock=lambda: 0.0)
        penalties = [fabric.chaos_penalty_s(0.0) for _ in range(30)]
        assert fabric.chaos_stalls > 0
        assert max(penalties) > 0.0


class TestCloudFanout:
    def test_apply_chaos_reaches_existing_and_future_substrates(self):
        cloud = build_default_cloud(seed=7)
        early = cloud.kv_table("aws:us-east-1", "early")
        cloud.apply_chaos(ChaosConfig(crash_prob=0.2, kv_reject_prob=0.2))
        late = cloud.kv_table("aws:us-east-2", "late")
        assert early._chaos is not None and late._chaos is not None
        faas = cloud.faas("aws:us-east-1")
        assert faas.chaos_crash_prob == pytest.approx(0.2)
        # Clearing restores every hot path to its single None check.
        cloud.apply_chaos(None)
        assert early._chaos is None and late._chaos is None
        assert faas.chaos_crash_prob == 0.0
        assert cloud.chaos is None

    def test_all_zero_config_normalizes_to_off(self):
        cloud = build_default_cloud(seed=7)
        cloud.apply_chaos(ChaosConfig())
        assert cloud.chaos is None

    def test_chaos_stats_keys(self):
        cloud = build_default_cloud(seed=7)
        stats = cloud.chaos_stats()
        assert set(stats) == {
            "faas_crashes", "faas_outage_failures", "notifications_dropped",
            "notifications_duplicated", "notifications_reordered",
            "kv_rejected", "kv_delayed", "kv_outage_rejections",
            "wan_stalls", "wan_blackout_hits", "wan_outage_hits",
            "corrupt_get", "corrupt_put", "corrupt_at_rest",
            "corrupt_truncated", "corrupt_wrong_etag",
        }
        assert all(v == 0 for v in stats.values())
