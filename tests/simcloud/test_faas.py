"""Tests for the simulated FaaS platforms."""

import pytest

from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.cost import CostCategory
from repro.simcloud.faas import FunctionTimeout, InvocationFailed
from repro.simcloud.network import FunctionConfig
from repro.simcloud.objectstore import Blob
from repro.simcloud.sim import Interrupt

MB = 10**6


@pytest.fixture
def cloud():
    return build_default_cloud(seed=2)


def run(cloud, gen):
    return cloud.sim.run_process(gen)


def echo_handler(ctx, payload):
    yield ctx.sleep(0.01)
    return payload


class TestInvocation:
    def test_invoke_returns_handler_result(self, cloud):
        faas = cloud.faas("aws:us-east-1")
        faas.deploy("echo", echo_handler)

        def main():
            accepted, invocation = faas.invoke("echo", {"v": 7})
            yield accepted
            result = yield invocation
            return result

        assert run(cloud, main()) == {"v": 7}

    def test_api_latency_precedes_acceptance(self, cloud):
        faas = cloud.faas("aws:us-east-1")
        faas.deploy("echo", echo_handler)

        def main():
            accepted, _ = faas.invoke("echo", None)
            yield accepted
            return cloud.now

        assert run(cloud, main()) > 0.0

    def test_unknown_function_raises(self, cloud):
        with pytest.raises(KeyError):
            cloud.faas("aws:us-east-1").invoke("nope", None)

    def test_cross_provider_invoke_slower(self, cloud):
        aws = cloud.faas("aws:us-east-1")
        aws.deploy("echo", echo_handler)
        az_region = cloud.region("azure:eastus")

        def accept_time(caller_region):
            def main():
                accepted, _ = aws.invoke("echo", None, caller_region=caller_region)
                yield accepted
                return cloud.now - start

            start = cloud.now
            return run(cloud, main())

        local = accept_time(cloud.region("aws:us-east-1"))
        cloud2 = build_default_cloud(seed=2)
        aws2 = cloud2.faas("aws:us-east-1")
        aws2.deploy("echo", echo_handler)

        def main2():
            accepted, _ = aws2.invoke("echo", None, caller_region=az_region)
            yield accepted
            return cloud2.now

        remote = run(cloud2, main2())
        assert remote > local

    def test_cold_then_warm_start(self, cloud):
        faas = cloud.faas("aws:us-east-1")
        faas.deploy("echo", echo_handler)

        def one_call():
            accepted, inv = faas.invoke("echo", None)
            yield accepted
            yield inv

        run(cloud, one_call())
        run(cloud, one_call())
        stats = faas.deployment_stats("echo")
        assert stats["cold_starts"] == 1
        assert stats["warm_starts"] == 1

    def test_warm_instance_keeps_channel(self, cloud):
        """A reused instance retains its (possibly slow) network factor."""
        faas = cloud.faas("aws:us-east-1")
        seen = []

        def handler(ctx, payload):
            seen.append(ctx.instance.channel.base_factor)
            yield ctx.sleep(0.001)

        faas.deploy("f", handler)

        def one_call():
            accepted, inv = faas.invoke("f", None)
            yield accepted
            yield inv

        run(cloud, one_call())
        run(cloud, one_call())
        assert seen[0] == seen[1]

    def test_expired_warm_instance_discarded(self, cloud):
        faas = cloud.faas("aws:us-east-1")
        faas.deploy("echo", echo_handler)

        def one_call():
            accepted, inv = faas.invoke("echo", None)
            yield accepted
            yield inv

        run(cloud, one_call())
        cloud.sim.run(until=cloud.now + faas.profile.keepalive_s + 1)
        run(cloud, one_call())
        assert faas.deployment_stats("echo")["cold_starts"] == 2


class TestSchedulerPostponement:
    def test_gcp_cold_starts_wait_for_tick(self):
        """Cloud Run's scheduler runs every 5 s; a cold invocation issued
        at t=1 s cannot start before the t=5 s tick."""
        cloud = build_default_cloud(seed=3)
        faas = cloud.faas("gcp:us-east1")
        started = []

        def handler(ctx, payload):
            started.append(ctx.now)
            yield ctx.sleep(0.001)

        faas.deploy("f", handler)

        def main():
            yield cloud.sim.sleep(1.0)
            accepted, inv = faas.invoke("f", None)
            yield accepted
            yield inv

        run(cloud, main())
        assert started[0] >= 5.0

    def test_aws_has_no_postponement(self):
        cloud = build_default_cloud(seed=3)
        faas = cloud.faas("aws:us-east-1")
        started = []

        def handler(ctx, payload):
            started.append(ctx.now)
            yield ctx.sleep(0.001)

        faas.deploy("f", handler)

        def main():
            yield cloud.sim.sleep(1.0)
            accepted, inv = faas.invoke("f", None)
            yield accepted
            yield inv

        run(cloud, main())
        assert started[0] < 2.5  # just I + cold start


class TestTimeoutsAndRetries:
    def test_timeout_interrupts_and_dead_letters(self, cloud):
        faas = cloud.faas("aws:us-east-1")

        def forever(ctx, payload):
            yield ctx.sleep(10_000.0)

        faas.deploy("stuck", forever, timeout_s=5.0)

        def main():
            accepted, inv = faas.invoke("stuck", {"id": 1})
            yield accepted
            try:
                yield inv
            except InvocationFailed:
                return "failed"
            return "ok"

        assert run(cloud, main()) == "failed"
        stats = faas.deployment_stats("stuck")
        assert stats["timeouts"] == 1 + faas.profile.max_retries
        assert len(faas.dead_letters) == 1

    def test_timeout_capped_at_platform_limit(self, cloud):
        faas = cloud.faas("gcp:us-east1")
        faas.deploy("f", echo_handler, timeout_s=10_000.0)
        assert faas._deployments["f"].timeout_s == 540.0

    def test_transient_failure_retried_to_success(self, cloud):
        faas = cloud.faas("aws:us-east-1")
        attempts = []

        def flaky(ctx, payload):
            attempts.append(ctx.now)
            yield ctx.sleep(0.01)
            if len(attempts) < 2:
                raise RuntimeError("transient")
            return "recovered"

        faas.deploy("flaky", flaky)

        def main():
            accepted, inv = faas.invoke("flaky", None)
            yield accepted
            return (yield inv)

        assert run(cloud, main()) == "recovered"
        assert faas.deployment_stats("flaky")["retries"] == 1

    def test_permanent_failure_exhausts_retries(self, cloud):
        faas = cloud.faas("aws:us-east-1")

        def broken(ctx, payload):
            yield ctx.sleep(0.01)
            raise ValueError("permanent")

        faas.deploy("broken", broken)

        def main():
            accepted, inv = faas.invoke("broken", None)
            yield accepted
            try:
                yield inv
            except InvocationFailed:
                return "dlq"

        assert run(cloud, main()) == "dlq"
        assert len(faas.dead_letters) == 1


class TestConcurrencyLimit:
    def test_excess_invocations_queue(self):
        cloud = build_default_cloud(seed=4)
        faas = cloud.faas("aws:us-east-1")
        faas.profile = type(faas.profile)(max_concurrency=2)
        peak = [0]

        def handler(ctx, payload):
            peak[0] = max(peak[0], faas.running)
            yield ctx.sleep(1.0)

        faas.deploy("f", handler)

        def main():
            invocations = []
            for _ in range(6):
                accepted, inv = faas.invoke("f", None)
                yield accepted
                invocations.append(inv)
            yield cloud.sim.all_of(invocations)

        run(cloud, main())
        assert peak[0] <= 2


class TestDataPath:
    def test_function_replicates_object(self, cloud):
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("aws:ca-central-1", "dst")
        blob = Blob.fresh(8 * MB)
        src.put_object("obj", blob, 0.0, notify=False)
        faas = cloud.faas("aws:us-east-1")

        def replicate(ctx, payload):
            data, version = yield from ctx.get_object(src, "obj")
            yield from ctx.put_object(dst, "obj", data)
            return version.etag

        faas.deploy("rep", replicate)

        def main():
            accepted, inv = faas.invoke("rep", None)
            yield accepted
            return (yield inv)

        etag = run(cloud, main())
        assert etag == blob.etag
        assert dst.head("obj").etag == blob.etag

    def test_egress_charged_once_for_relay_at_source(self, cloud):
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("azure:eastus", "dst")
        blob = Blob.fresh(100 * MB)
        src.put_object("obj", blob, 0.0, notify=False)
        faas = cloud.faas("aws:us-east-1")

        def replicate(ctx, payload):
            data, _ = yield from ctx.get_object(src, "obj")
            yield from ctx.put_object(dst, "obj", data)

        faas.deploy("rep", replicate)

        def main():
            accepted, inv = faas.invoke("rep", None)
            yield accepted
            yield inv

        run(cloud, main())
        egress = cloud.ledger.total(CostCategory.EGRESS)
        # Download is intra-region (free); upload crosses AWS->Azure at
        # $0.09/GB. 100 MB => $0.009.
        assert egress == pytest.approx(0.09 * 100 * MB / 10**9, rel=1e-6)

    def test_compute_and_requests_billed(self, cloud):
        faas = cloud.faas("aws:us-east-1")
        faas.deploy("echo", echo_handler)

        def main():
            accepted, inv = faas.invoke("echo", None)
            yield accepted
            yield inv

        run(cloud, main())
        assert cloud.ledger.total(CostCategory.FAAS_COMPUTE) > 0
        assert cloud.ledger.total(CostCategory.FAAS_REQUESTS) > 0

    def test_head_object_charges_no_egress(self, cloud):
        src = cloud.bucket("aws:us-east-1", "src")
        src.put_object("obj", Blob.fresh(MB), 0.0, notify=False)
        faas = cloud.faas("azure:eastus")

        def peek(ctx, payload):
            meta = yield from ctx.head_object(src, "obj")
            return meta.size

        faas.deploy("peek", peek)

        def main():
            accepted, inv = faas.invoke("peek", None)
            yield accepted
            return (yield inv)

        assert run(cloud, main()) == MB
        assert cloud.ledger.total(CostCategory.EGRESS) == 0.0

    def test_multipart_via_context(self, cloud):
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("aws:ca-central-1", "dst")
        blob = Blob.fresh(32 * MB)
        src.put_object("obj", blob, 0.0, notify=False)
        faas = cloud.faas("aws:us-east-1")

        def rep(ctx, payload):
            upload = yield from ctx.initiate_multipart(dst, "obj")
            for i, off in enumerate(range(0, 32 * MB, 8 * MB), start=1):
                part, _ = yield from ctx.get_object(src, "obj", off, 8 * MB)
                yield from ctx.upload_part(dst, upload, i, part)
            version = yield from ctx.complete_multipart(dst, upload)
            return version.etag

        faas.deploy("rep", rep)

        def main():
            accepted, inv = faas.invoke("rep", None)
            yield accepted
            return (yield inv)

        assert run(cloud, main()) == blob.etag

    def test_remaining_time_decreases(self, cloud):
        faas = cloud.faas("aws:us-east-1")
        readings = []

        def handler(ctx, payload):
            readings.append(ctx.remaining_s)
            yield ctx.sleep(1.0)
            readings.append(ctx.remaining_s)

        faas.deploy("f", handler, timeout_s=10.0)

        def main():
            accepted, inv = faas.invoke("f", None)
            yield accepted
            yield inv

        run(cloud, main())
        assert readings[0] > readings[1]

    def test_invoke_from_context(self, cloud):
        aws = cloud.faas("aws:us-east-1")
        az = cloud.faas("azure:eastus")
        az.deploy("worker", echo_handler)

        def orchestrator(ctx, payload):
            invocation = yield from ctx.invoke(az, "worker", "hi")
            result = yield invocation
            return result

        aws.deploy("orch", orchestrator)

        def main():
            accepted, inv = aws.invoke("orch", None)
            yield accepted
            return (yield inv)

        assert run(cloud, main()) == "hi"
