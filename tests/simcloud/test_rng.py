"""Tests for seeded random streams and distribution helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcloud.rng import RngFactory, constant, lognormal, normal, uniform


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(7).stream("x").random(10)
        b = RngFactory(7).stream("x").random(10)
        assert np.allclose(a, b)

    def test_different_names_differ(self):
        a = RngFactory(7).stream("x").random(10)
        b = RngFactory(7).stream("y").random(10)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(1).stream("x").random(10)
        b = RngFactory(2).stream("x").random(10)
        assert not np.allclose(a, b)

    def test_child_factory_deterministic(self):
        a = RngFactory(3).child("sub").stream("s").random(5)
        b = RngFactory(3).child("sub").stream("s").random(5)
        assert np.allclose(a, b)

    def test_child_differs_from_parent(self):
        a = RngFactory(3).stream("s").random(5)
        b = RngFactory(3).child("sub").stream("s").random(5)
        assert not np.allclose(a, b)


class TestDist:
    def test_normal_moments(self):
        rng = np.random.default_rng(0)
        d = normal(10.0, 2.0)
        samples = d.sample(rng, 200_000)
        assert abs(samples.mean() - 10.0) < 0.05
        assert abs(samples.std() - 2.0) < 0.05
        assert d.mean == 10.0
        assert d.std == 2.0

    def test_normal_floor_truncates(self):
        rng = np.random.default_rng(0)
        d = normal(0.0, 1.0, floor=0.5)
        assert (d.sample(rng, 1000) >= 0.5).all()

    def test_lognormal_mean_formula(self):
        rng = np.random.default_rng(0)
        d = lognormal(-0.125, 0.5)
        samples = d.sample(rng, 400_000)
        assert abs(samples.mean() - d.mean) < 0.01
        assert abs(samples.std() - d.std) < 0.02

    def test_constant(self):
        rng = np.random.default_rng(0)
        d = constant(3.5)
        assert d.sample(rng) == 3.5
        assert (d.sample(rng, 10) == 3.5).all()
        assert d.mean == 3.5
        assert d.std == 0.0

    def test_uniform_range(self):
        rng = np.random.default_rng(0)
        d = uniform(2.0, 4.0)
        samples = d.sample(rng, 1000)
        assert samples.min() >= 2.0
        assert samples.max() <= 4.0
        assert d.mean == 3.0

    def test_unknown_kind_rejected(self):
        from repro.simcloud.rng import Dist

        with pytest.raises(ValueError):
            Dist("cauchy", 0.0).sample(np.random.default_rng(0))

    @given(mean=st.floats(0.1, 100), std=st.floats(0.01, 10))
    @settings(max_examples=25, deadline=None)
    def test_samples_respect_floor_property(self, mean, std):
        rng = np.random.default_rng(0)
        d = normal(mean, std, floor=0.001)
        assert (d.sample(rng, 200) >= 0.001).all()

    def test_scalar_sample_is_float_like(self):
        rng = np.random.default_rng(0)
        assert float(normal(1.0, 0.1).sample(rng)) > 0
