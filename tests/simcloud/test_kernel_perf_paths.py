"""Kernel fast-path semantics: the optimizations must be invisible.

Covers the event-record scheduling primitives (``schedule_resolve`` /
``schedule_fail`` / ``schedule_call``), the zero-delay FIFO ring's
ordering guarantees against the heap, the :class:`SleepRequest` and
:class:`DeferredResult` process fast paths (including interrupt
safety via the resume epoch), and lazy cancelled-timer compaction.
"""

import pytest

from repro.simcloud.sim import (
    DeferredResult,
    Future,
    Interrupt,
    SimulationError,
    SleepRequest,
    Simulator,
)


class TestSchedulingPrimitives:
    def test_schedule_resolve_delivers_value(self):
        sim = Simulator()
        fut = Future(sim)
        sim.schedule_resolve(1.5, fut, "payload")
        got = []

        def proc():
            got.append((yield fut))

        sim.spawn(proc())
        sim.run()
        assert got == ["payload"]
        assert sim.now == 1.5

    def test_schedule_fail_raises_in_waiter(self):
        sim = Simulator()
        fut = Future(sim)
        sim.schedule_fail(0.5, fut, RuntimeError("boom"))
        caught = []

        def proc():
            try:
                yield fut
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.spawn(proc())
        sim.run()
        assert caught == ["boom"]

    def test_schedule_call_passes_both_arguments(self):
        sim = Simulator()
        seen = []
        sim.schedule_call(2.0, lambda a, b: seen.append((sim.now, a, b)),
                          "x", 42)
        sim.run()
        assert seen == [(2.0, "x", 42)]

    def test_schedule_call_rejects_negative_delay(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_call(-0.1, lambda a, b: None)


class TestSameTimestampOrdering:
    """Events at one timestamp fire in scheduling order, whether they
    land on the zero-delay ring or the heap."""

    def _trace(self, until):
        sim = Simulator()
        order = []

        def proc(tag):
            yield sim.sleep(1.0)
            order.append(f"proc:{tag}")
            yield sim.sleep(0.0)   # ring entry at t=1
            order.append(f"ring:{tag}")

        for tag in ("a", "b", "c"):
            sim.spawn(proc(tag))
        for tag in ("x", "y"):     # heap entries also at t=1
            sim.call_at(1.0, lambda t=tag: order.append(f"timer:{t}"))
        sim.run(until=until)
        return order

    def test_fifo_order_matches_between_drain_and_bounded_run(self):
        # run() takes the inlined _drain loop; run(until) the step loop.
        unbounded = self._trace(until=None)
        bounded = self._trace(until=10.0)
        assert unbounded == bounded
        # FIFO by scheduling order at t=1: the timers were pushed at
        # spawn time, the sleep wake-ups only when each process first
        # stepped (at t=0), so the timers carry earlier sequence numbers.
        assert unbounded == [
            "timer:x", "timer:y", "proc:a", "proc:b", "proc:c",
            "ring:a", "ring:b", "ring:c",
        ]

    def test_ring_preserves_fifo_within_a_timestamp(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule_call(0.0, lambda a, _b, i=i: order.append(i), None)
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestSleepRequestFastPath:
    def test_sleep_request_advances_clock(self):
        sim = Simulator()
        times = []

        def proc():
            yield SleepRequest(1.25)
            times.append(sim.now)
            yield SleepRequest(0.75)
            times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == [1.25, 2.0]

    def test_negative_delay_clamps_to_zero(self):
        assert SleepRequest(-3.0).delay == 0.0
        assert DeferredResult(-3.0).delay == 0.0

    def test_interrupt_during_sleep_request(self):
        sim = Simulator()
        events = []

        def sleeper():
            try:
                yield SleepRequest(10.0)
                events.append("woke")
            except Interrupt as intr:
                events.append(f"interrupted:{intr.cause}")
                yield SleepRequest(1.0)
                events.append(f"resumed@{sim.now}")

        proc = sim.spawn(sleeper())

        def interrupter():
            yield sim.sleep(2.0)
            proc.interrupt("test")

        sim.spawn(interrupter())
        sim.run()
        # The stale direct wake-up at t=10 must NOT resume the process a
        # second time: exactly one interrupt, one resume.
        assert events == ["interrupted:test", "resumed@3.0"]

    def test_process_result_survives_fast_paths(self):
        sim = Simulator()

        def proc():
            yield SleepRequest(1.0)
            return "done"

        p = sim.spawn(proc())
        sim.run()
        assert p.done and p.value == "done"


class TestDeferredResultFastPath:
    def test_value_delivery(self):
        sim = Simulator()
        got = []

        def proc():
            value = yield DeferredResult(0.5, value={"k": 1})
            got.append((sim.now, value))

        sim.spawn(proc())
        sim.run()
        assert got == [(0.5, {"k": 1})]

    def test_exception_delivery(self):
        sim = Simulator()
        caught = []

        def proc():
            try:
                yield DeferredResult(0.25, exc=KeyError("missing"))
            except KeyError as exc:
                caught.append((sim.now, str(exc)))

        sim.spawn(proc())
        sim.run()
        assert caught == [(0.25, "'missing'")]

    def test_interrupt_during_deferred_result(self):
        sim = Simulator()
        events = []

        def waiter():
            try:
                yield DeferredResult(10.0, value="late")
                events.append("value")
            except Interrupt:
                events.append("interrupted")

        proc = sim.spawn(waiter())

        def interrupter():
            yield sim.sleep(1.0)
            proc.interrupt("stop")

        sim.spawn(interrupter())
        sim.run()
        assert events == ["interrupted"]


class TestTombstoneChurnStress:
    """Heavy schedule/cancel churn across every wheel level.

    The pre-wheel kernel could drift ``_tombstones`` across the
    compaction/merge paths, silently defeating compaction; the counter
    is now self-checking (compaction raises if it goes negative) and
    this stress keeps the dead-record population bounded."""

    @pytest.mark.parametrize("kernel", ["wheel", "heap"])
    def test_churn_keeps_accounting_consistent(self, kernel):
        sim = Simulator(kernel=kernel)
        fired = []
        pending = []
        horizons = (0.1, 0.9, 3.7, 60.0, 700.0, 5000.0)

        def churn(round_no):
            # Cancel 3 of 4 timers from the previous round, then lay
            # down a fresh spread across all wheel levels.
            for i, timer in enumerate(pending):
                if (i + round_no) % 4 != 0:
                    timer.cancel()
                    timer.cancel()  # double-cancel must stay a no-op
            pending.clear()
            if round_no >= 40:
                return
            for i, h in enumerate(horizons):
                pending.append(sim.call_later(
                    h + round_no * 1e-3,
                    lambda r=round_no, i=i: fired.append((r, i))))
            sim.call_later(0.05, lambda: churn(round_no + 1))

        churn(0)
        sim.run()
        assert fired, "churn never fired a surviving timer"
        assert sim._tombstones == 0, \
            f"tombstone count drifted: {sim._tombstones}"
        if kernel == "wheel":
            assert sim._dead_buffered == 0
            # All slab slots are recycled once the run drains.
            assert len(sim._free) == len(sim._slab_kind)

    def test_wheel_compaction_bounds_dead_records(self):
        sim = Simulator()
        sim.call_later(10_000.0, lambda: None)  # keep the run alive
        for _ in range(20):
            timers = [sim.call_later(3600.0 + i * 0.01, lambda: None)
                      for i in range(500)]
            for t in timers:
                t.cancel()
            # Dead records may buffer, but compaction must keep them
            # a bounded fraction of the parked population.
            live = (len(sim._slab_kind) - len(sim._free)
                    - sim._dead_buffered)
            assert sim._dead_buffered <= max(64, live + 64)
        sim.run()
        assert sim._tombstones == 0


class TestCancelledTimerCompaction:
    def test_cancelled_timers_never_fire_and_heap_compacts(self):
        sim = Simulator()
        fired = []
        timers = [sim.call_later(float(i + 1), lambda i=i: fired.append(i))
                  for i in range(500)]
        for i, t in enumerate(timers):
            if i % 4 != 3:
                t.cancel()
        # 375 tombstones against 500 records: compaction must have run.
        assert len(sim._heap) < 500
        sim.run()
        assert fired == [i for i in range(500) if i % 4 == 3]

    def test_cancelled_horizon_does_not_drag_clock(self):
        sim = Simulator()
        t = sim.call_later(1000.0, lambda: None)
        sim.call_later(1.0, lambda: None)
        t.cancel()
        sim.run()
        assert sim.now == 1.0
