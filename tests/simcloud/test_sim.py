"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.simcloud.sim import Future, Interrupt, SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_call_later_ordering():
    sim = Simulator()
    log = []
    sim.call_later(2.0, lambda: log.append("b"))
    sim.call_later(1.0, lambda: log.append("a"))
    sim.call_later(3.0, lambda: log.append("c"))
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    log = []
    for i in range(5):
        sim.call_later(1.0, lambda i=i: log.append(i))
    sim.run()
    assert log == [0, 1, 2, 3, 4]


def test_call_at_in_past_raises():
    sim = Simulator()
    sim.call_later(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_run_until_advances_clock_exactly():
    sim = Simulator()
    sim.call_later(1.0, lambda: None)
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_does_not_execute_later_events():
    sim = Simulator()
    log = []
    sim.call_later(5.0, lambda: log.append("late"))
    sim.run(until=2.0)
    assert log == []
    sim.run()
    assert log == ["late"]


def test_process_sleep_sequence():
    sim = Simulator()
    log = []

    def proc():
        yield sim.sleep(1.5)
        log.append(sim.now)
        yield sim.sleep(0.5)
        log.append(sim.now)
        return "done"

    result = sim.run_process(proc())
    assert log == [1.5, 2.0]
    assert result == "done"


def test_process_returns_value_through_future():
    sim = Simulator()

    def inner():
        yield sim.sleep(1.0)
        return 42

    def outer():
        value = yield sim.spawn(inner())
        return value + 1

    assert sim.run_process(outer()) == 43


def test_future_resolution_wakes_waiter():
    sim = Simulator()
    fut = Future(sim)
    log = []

    def waiter():
        value = yield fut
        log.append((sim.now, value))

    sim.spawn(waiter())
    sim.call_later(3.0, lambda: fut.resolve("hello"))
    sim.run()
    assert log == [(3.0, "hello")]


def test_future_failure_raises_in_waiter():
    sim = Simulator()
    fut = Future(sim)

    def waiter():
        with pytest.raises(ValueError):
            yield fut
        return "caught"

    proc = sim.spawn(waiter())
    sim.call_later(1.0, lambda: fut.fail(ValueError("boom")))
    sim.run()
    assert proc.value == "caught"


def test_uncaught_exception_fails_process():
    sim = Simulator()

    def bad():
        yield sim.sleep(1.0)
        raise RuntimeError("broken")

    proc = sim.spawn(bad())
    sim.run()
    assert proc.done
    assert isinstance(proc.exception, RuntimeError)


def test_double_resolve_rejected():
    sim = Simulator()
    fut = Future(sim)
    fut.resolve(1)
    with pytest.raises(SimulationError):
        fut.resolve(2)


def test_all_of_collects_in_order():
    sim = Simulator()

    def worker(delay, value):
        yield sim.sleep(delay)
        return value

    def main():
        procs = [sim.spawn(worker(3 - i, i)) for i in range(3)]
        values = yield sim.all_of(procs)
        return values

    assert sim.run_process(main()) == [0, 1, 2]


def test_all_of_empty_resolves_immediately():
    sim = Simulator()

    def main():
        values = yield sim.all_of([])
        return values

    assert sim.run_process(main()) == []


def test_any_of_returns_first():
    sim = Simulator()

    def worker(delay, value):
        yield sim.sleep(delay)
        return value

    def main():
        idx, value = yield sim.any_of(
            [sim.spawn(worker(5, "slow")), sim.spawn(worker(1, "fast"))]
        )
        return idx, value, sim.now

    assert sim.run_process(main()) == (1, "fast", 1.0)


def test_interrupt_raises_inside_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.sleep(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))
        return "interrupted"

    proc = sim.spawn(sleeper())
    sim.call_later(2.0, lambda: proc.interrupt("timeout"))
    sim.run()
    assert log == [(2.0, "timeout")]
    assert proc.value == "interrupted"


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.sleep(1.0)
        return "ok"

    proc = sim.spawn(quick())
    sim.run()
    proc.interrupt("late")  # must not raise
    assert proc.value == "ok"


def test_stale_wakeup_after_interrupt_ignored():
    """A process interrupted mid-sleep must not be resumed again when the
    original sleep future later resolves."""
    sim = Simulator()
    resumes = []

    def sleeper():
        try:
            yield sim.sleep(10.0)
            resumes.append("slept")
        except Interrupt:
            resumes.append("interrupted")
            yield sim.sleep(20.0)
            resumes.append("post")

    proc = sim.spawn(sleeper())
    sim.call_later(1.0, lambda: proc.interrupt(None))
    sim.run()
    assert resumes == ["interrupted", "post"]
    assert sim.now == 21.0


def test_yielding_non_future_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    proc = sim.spawn(bad())
    sim.run()
    assert isinstance(proc.exception, SimulationError)


def test_run_process_detects_deadlock():
    sim = Simulator()
    fut = Future(sim)

    def stuck():
        yield fut

    with pytest.raises(SimulationError, match="did not finish"):
        sim.run_process(stuck())


def test_negative_sleep_clamped_to_zero():
    sim = Simulator()

    def proc():
        yield sim.sleep(-5.0)
        return sim.now

    assert sim.run_process(proc()) == 0.0


def test_nested_process_failure_propagates():
    sim = Simulator()

    def inner():
        yield sim.sleep(1.0)
        raise KeyError("missing")

    def outer():
        try:
            yield sim.spawn(inner())
        except KeyError:
            return "handled"
        return "unreachable"

    assert sim.run_process(outer()) == "handled"
