"""Tests for the simulated object storage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcloud.objectstore import (
    Blob,
    Bucket,
    NoSuchKey,
    NoSuchUpload,
    PreconditionFailed,
)
from repro.simcloud.regions import get_region

US_EAST = get_region("aws:us-east-1")


def make_bucket(versioning=False):
    return Bucket("b", US_EAST, versioning=versioning)


class TestBlob:
    def test_fresh_blobs_are_distinct(self):
        a, b = Blob.fresh(100), Blob.fresh(100)
        assert a.content_id != b.content_id
        assert a.etag != b.etag

    def test_etag_is_content_hash(self):
        blob = Blob(10, (("fixed", 0, 10),))
        assert blob.etag == Blob(10, (("fixed", 0, 10),)).etag
        assert blob.etag != Blob(10, (("other", 0, 10),)).etag

    def test_full_slice_is_identity(self):
        blob = Blob.fresh(1000)
        assert blob.slice(0, 1000) == blob

    def test_partial_slice_changes_identity(self):
        blob = Blob.fresh(1000)
        part = blob.slice(0, 500)
        assert part.size == 500
        assert part.etag != blob.etag

    def test_slice_out_of_range_rejected(self):
        blob = Blob.fresh(100)
        with pytest.raises(ValueError):
            blob.slice(50, 100)
        with pytest.raises(ValueError):
            blob.slice(-1, 10)

    def test_concat_of_consecutive_slices_restores_identity(self):
        """Multipart re-assembly of one object's parts must reproduce the
        source ETag — the invariant behind optimistic validation."""
        blob = Blob.fresh(100)
        parts = [blob.slice(0, 30), blob.slice(30, 30), blob.slice(60, 40)]
        assert Blob.concat(parts) == blob

    def test_concat_of_mixed_versions_differs(self):
        """Parts from two different versions assemble into content that
        matches neither — the Figure 14 inconsistency is detectable."""
        v1, v2 = Blob.fresh(100), Blob.fresh(100)
        mixed = Blob.concat([v1.slice(0, 50), v2.slice(50, 50)])
        assert mixed.etag not in (v1.etag, v2.etag)
        assert mixed.size == 100

    def test_concat_out_of_order_slices_differs(self):
        blob = Blob.fresh(100)
        swapped = Blob.concat([blob.slice(50, 50), blob.slice(0, 50)])
        assert swapped.etag != blob.etag

    def test_concat_empty_and_single(self):
        assert Blob.concat([]).size == 0
        one = Blob.fresh(5)
        assert Blob.concat([one]) == one

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Blob.fresh(-1)

    @given(
        size=st.integers(1, 10_000),
        cuts=st.lists(st.integers(1, 9_999), min_size=0, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_full_partition_reassembles(self, size, cuts):
        blob = Blob.fresh(size)
        offsets = sorted({c for c in cuts if c < size})
        bounds = [0, *offsets, size]
        parts = [
            blob.slice(lo, hi - lo) for lo, hi in zip(bounds, bounds[1:]) if hi > lo
        ]
        assert Blob.concat(parts) == blob


class TestBucketBasics:
    def test_put_then_head(self):
        b = make_bucket()
        blob = Blob.fresh(123)
        version = b.put_object("k", blob, time=1.0)
        assert b.head("k").etag == blob.etag
        assert version.size == 123
        assert "k" in b

    def test_get_missing_raises(self):
        with pytest.raises(NoSuchKey):
            make_bucket().head("nope")

    def test_overwrite_replaces_current(self):
        b = make_bucket()
        b.put_object("k", Blob.fresh(10), time=1.0)
        v2 = b.put_object("k", Blob.fresh(20), time=2.0)
        assert b.head("k").etag == v2.etag
        assert b.head("k").size == 20

    def test_sequencers_increase(self):
        b = make_bucket()
        v1 = b.put_object("a", Blob.fresh(1), 1.0)
        v2 = b.put_object("b", Blob.fresh(1), 2.0)
        assert v2.sequencer > v1.sequencer

    def test_delete_removes(self):
        b = make_bucket()
        b.put_object("k", Blob.fresh(10), 1.0)
        b.delete_object("k", 2.0)
        assert "k" not in b

    def test_delete_missing_is_idempotent(self):
        b = make_bucket()
        b.delete_object("k", 1.0)  # must not raise

    def test_ranged_get(self):
        b = make_bucket()
        blob = Blob.fresh(100)
        b.put_object("k", blob, 1.0)
        part, version = b.get_object("k", offset=10, length=20)
        assert part.size == 20
        assert version.etag == blob.etag

    def test_full_get_defaults(self):
        b = make_bucket()
        blob = Blob.fresh(100)
        b.put_object("k", blob, 1.0)
        part, _ = b.get_object("k")
        assert part == blob

    def test_copy_object_preserves_content(self):
        b = make_bucket()
        blob = Blob.fresh(50)
        b.put_object("src", blob, 1.0)
        b.copy_object("src", "dst", 2.0)
        assert b.head("dst").etag == blob.etag

    def test_total_bytes(self):
        b = make_bucket()
        b.put_object("a", Blob.fresh(10), 1.0)
        b.put_object("b", Blob.fresh(20), 1.0)
        assert b.total_bytes() == 30

    def test_keys_sorted(self):
        b = make_bucket()
        b.put_object("z", Blob.fresh(1), 1.0)
        b.put_object("a", Blob.fresh(1), 1.0)
        assert b.keys() == ["a", "z"]

    def test_current_etag_none_when_missing(self):
        assert make_bucket().current_etag("k") is None


class TestConditionalWrites:
    def test_if_match_success(self):
        b = make_bucket()
        v1 = b.put_object("k", Blob.fresh(10), 1.0)
        b.put_object("k", Blob.fresh(11), 2.0, if_match=v1.etag)

    def test_if_match_failure(self):
        b = make_bucket()
        b.put_object("k", Blob.fresh(10), 1.0)
        with pytest.raises(PreconditionFailed):
            b.put_object("k", Blob.fresh(11), 2.0, if_match="wrong")

    def test_if_match_on_missing_key_fails(self):
        b = make_bucket()
        with pytest.raises(PreconditionFailed):
            b.put_object("k", Blob.fresh(1), 1.0, if_match="anything")


class TestVersioning:
    def test_noncurrent_versions_retained(self):
        b = make_bucket(versioning=True)
        v1 = b.put_object("k", Blob.fresh(10), 1.0)
        b.put_object("k", Blob.fresh(20), 2.0)
        old = b.noncurrent_versions("k")
        assert [o.etag for o in old] == [v1.etag]

    def test_versioned_storage_grows(self):
        b = make_bucket(versioning=True)
        b.put_object("k", Blob.fresh(10), 1.0)
        b.put_object("k", Blob.fresh(10), 2.0)
        assert b.total_bytes() == 10
        assert b.total_bytes(include_noncurrent=True) == 20

    def test_unversioned_bucket_discards_old(self):
        b = make_bucket(versioning=False)
        b.put_object("k", Blob.fresh(10), 1.0)
        b.put_object("k", Blob.fresh(20), 2.0)
        assert b.noncurrent_versions("k") == []
        assert b.total_bytes(include_noncurrent=True) == 20

    def test_versioned_delete_keeps_noncurrent(self):
        b = make_bucket(versioning=True)
        v1 = b.put_object("k", Blob.fresh(10), 1.0)
        b.delete_object("k", 2.0)
        assert "k" not in b
        assert [o.etag for o in b.noncurrent_versions("k")] == [v1.etag]


class TestMultipart:
    def test_roundtrip_preserves_etag(self):
        b = make_bucket()
        src = Blob.fresh(96)
        upload = b.initiate_multipart("k")
        for i, off in enumerate(range(0, 96, 32), start=1):
            b.upload_part(upload, i, src.slice(off, 32))
        version = b.complete_multipart(upload, time=3.0)
        assert version.etag == src.etag

    def test_parts_ordered_by_number_not_upload_order(self):
        b = make_bucket()
        src = Blob.fresh(60)
        upload = b.initiate_multipart("k")
        b.upload_part(upload, 2, src.slice(30, 30))
        b.upload_part(upload, 1, src.slice(0, 30))
        version = b.complete_multipart(upload, time=1.0)
        assert version.etag == src.etag

    def test_complete_unknown_upload_rejected(self):
        b = make_bucket()
        with pytest.raises(NoSuchUpload):
            b.complete_multipart("mpu999", time=1.0)

    def test_double_complete_rejected(self):
        b = make_bucket()
        upload = b.initiate_multipart("k")
        b.upload_part(upload, 1, Blob.fresh(10))
        b.complete_multipart(upload, time=1.0)
        with pytest.raises(NoSuchUpload):
            b.complete_multipart(upload, time=2.0)

    def test_empty_complete_rejected(self):
        b = make_bucket()
        upload = b.initiate_multipart("k")
        with pytest.raises(ValueError):
            b.complete_multipart(upload, time=1.0)

    def test_part_numbers_start_at_one(self):
        b = make_bucket()
        upload = b.initiate_multipart("k")
        with pytest.raises(ValueError):
            b.upload_part(upload, 0, Blob.fresh(1))

    def test_abort_discards(self):
        b = make_bucket()
        upload = b.initiate_multipart("k")
        b.abort_multipart(upload)
        with pytest.raises(NoSuchUpload):
            b.upload_part(upload, 1, Blob.fresh(1))

    def test_if_match_guard_checked_at_completion(self):
        """The Figure 14 defence: completing a multipart replication whose
        source changed mid-flight must fail."""
        b = make_bucket()
        v1 = b.put_object("k", Blob.fresh(10), 1.0)
        upload = b.initiate_multipart("k", if_match=v1.etag)
        b.upload_part(upload, 1, Blob.fresh(10))
        b.put_object("k", Blob.fresh(10), 2.0)  # concurrent overwrite
        with pytest.raises(PreconditionFailed):
            b.complete_multipart(upload, time=3.0)


class TestEvents:
    def test_put_emits_created_event(self):
        b = make_bucket()
        events = []
        b.subscribe(events.append)
        blob = Blob.fresh(42)
        b.put_object("k", blob, time=7.0)
        assert len(events) == 1
        ev = events[0]
        assert (ev.kind, ev.key, ev.size, ev.etag) == ("created", "k", 42, blob.etag)
        assert ev.event_time == 7.0

    def test_delete_emits_deleted_event(self):
        b = make_bucket()
        events = []
        b.subscribe(events.append)
        b.put_object("k", Blob.fresh(1), 1.0)
        b.delete_object("k", 2.0)
        assert [e.kind for e in events] == ["created", "deleted"]

    def test_notify_false_suppresses_event(self):
        b = make_bucket()
        events = []
        b.subscribe(events.append)
        b.put_object("k", Blob.fresh(1), 1.0, notify=False)
        assert events == []

    def test_multipart_complete_emits_single_event(self):
        b = make_bucket()
        events = []
        b.subscribe(events.append)
        upload = b.initiate_multipart("k")
        b.upload_part(upload, 1, Blob.fresh(10))
        b.complete_multipart(upload, time=1.0)
        assert [e.kind for e in events] == ["created"]
