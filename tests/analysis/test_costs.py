"""Tests for the analytic cost model, validated against the metered
ledger of real simulated replications."""

import pytest

from repro.analysis.costs import CostEstimate, ReplicationCostModel
from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024
GB = 1024 * MB


class TestCostEstimate:
    def test_total_sums_components(self):
        est = CostEstimate(egress=1.0, compute=0.5, requests=0.1, kv=0.05,
                           service_fee=0.2, storage=0.15)
        assert est.total == pytest.approx(2.0)

    def test_plus_and_scaled(self):
        a = CostEstimate(egress=1.0)
        b = CostEstimate(compute=2.0)
        assert a.plus(b).total == pytest.approx(3.0)
        assert a.scaled(30).egress == pytest.approx(30.0)


class TestPerObjectEstimates:
    def setup_method(self):
        self.model = ReplicationCostModel()

    def test_areplica_egress_dominates_large_cross_cloud(self):
        est = self.model.areplica("aws:us-east-1", "azure:eastus", GB,
                                  n=32, loc_key="aws:us-east-1",
                                  transfer_seconds=2.0)
        assert est.egress == pytest.approx(0.09 * GB / 1e9)
        assert est.egress / est.total > 0.8

    def test_areplica_relay_at_third_region_pays_double_egress(self):
        direct = self.model.areplica("aws:us-east-1", "azure:eastus", GB,
                                     n=8, loc_key="aws:us-east-1",
                                     transfer_seconds=2.0)
        relayed = self.model.areplica("aws:us-east-1", "azure:eastus", GB,
                                      n=8, loc_key="gcp:us-east1",
                                      transfer_seconds=2.0)
        assert relayed.egress > direct.egress * 1.5

    def test_skyplane_minimum_vm_charge(self):
        est = self.model.skyplane("aws:us-east-1", "aws:us-east-2", MB)
        # Two VMs, 60 s billing minimum each.
        assert est.compute >= 2 * 1.5 * 60 / 3600

    def test_s3rtc_matches_paper_1gb(self):
        est = self.model.s3rtc("aws:us-east-1", "aws:ca-central-1", GB)
        # Table 1: ~354e-4 $ for 1 GB.
        assert 0.030 < est.total < 0.045

    def test_s3rtc_rejects_cross_cloud(self):
        with pytest.raises(ValueError):
            self.model.s3rtc("aws:us-east-1", "azure:eastus", GB)

    def test_azrep_rejects_non_azure(self):
        with pytest.raises(ValueError):
            self.model.azrep("aws:us-east-1", "azure:eastus", GB)

    def test_azrep_has_no_service_fee(self):
        est = self.model.azrep("azure:eastus", "azure:uksouth", GB)
        assert est.service_fee == 0.0
        assert est.egress > 0


class TestAgainstMeteredLedger:
    @pytest.mark.parametrize("size,rel", [(1 * MB, 1.2), (128 * MB, 0.5),
                                          (1 * GB, 0.35)])
    def test_areplica_estimate_tracks_simulation(self, size, rel):
        cloud = build_default_cloud(seed=601)
        config = ReplicaConfig(profile_samples=5, mc_samples=300)
        svc = AReplicaService(cloud, config)
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("azure:eastus", "dst")
        svc.add_rule(src, dst)
        before = cloud.ledger.snapshot()
        src.put_object("k", Blob.fresh(size), cloud.now)
        cloud.run()
        metered = before.delta(cloud.ledger.snapshot()).total
        record = svc.records[-1]
        est = ReplicationCostModel().areplica(
            "aws:us-east-1", "azure:eastus", size, n=record.plan_n,
            loc_key=record.loc_key,
            transfer_seconds=record.replication_seconds)
        assert est.total == pytest.approx(metered, rel=rel)

    def test_skyplane_estimate_tracks_simulation(self):
        from repro.baselines.skyplane import SkyplaneReplicator

        cloud = build_default_cloud(seed=602)
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("aws:us-east-2", "dst")
        sky = SkyplaneReplicator(cloud, src, dst)
        src.put_object("k", Blob.fresh(10 * MB), cloud.now, notify=False)
        before = cloud.ledger.snapshot()
        sky.replicate_once("k")
        metered = before.delta(cloud.ledger.snapshot()).total
        est = ReplicationCostModel().skyplane("aws:us-east-1",
                                              "aws:us-east-2", 10 * MB)
        assert est.total == pytest.approx(metered, rel=0.5)


class TestWorkloadProjection:
    def test_monthly_extrapolation_scales(self):
        model = ReplicationCostModel()
        sizes = [MB] * 10
        one_day = model.workload_monthly("aws:us-east-1", "aws:us-east-2",
                                         sizes, "areplica", days_observed=1.0)
        half_day = model.workload_monthly("aws:us-east-1", "aws:us-east-2",
                                          sizes, "areplica", days_observed=0.5)
        assert half_day.total == pytest.approx(2 * one_day.total)

    def test_system_ordering_small_objects(self):
        """For a small-object workload the paper's cost ordering holds:
        AReplica < S3 RTC << Skyplane."""
        model = ReplicationCostModel()
        sizes = [MB] * 100
        args = ("aws:us-east-1", "aws:us-east-2", sizes)
        ours = model.workload_monthly(*args, system="areplica").total
        rtc = model.workload_monthly(*args, system="s3rtc").total
        sky = model.workload_monthly(*args, system="skyplane").total
        assert ours < rtc < sky
        assert sky / ours > 100

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            ReplicationCostModel().workload_monthly(
                "aws:us-east-1", "aws:us-east-2", [MB], system="pigeon")
