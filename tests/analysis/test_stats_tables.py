"""Tests for the analysis helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.report import ExperimentResult, render_markdown
from repro.analysis.stats import (
    percentile,
    size_histogram,
    summarize,
    throughput_per_minute,
    windowed_percentile,
)
from repro.analysis.tables import DelayCostCell, delta_percent, format_comparison_table


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 0.5) == 3.0

    def test_extremes(self):
        assert percentile([1, 2, 3], 0.0) == 1.0
        assert percentile([1, 2, 3], 1.0) == 3.0

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 0.5))

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=100),
           st.floats(0, 1))
    @settings(max_examples=50, deadline=None)
    def test_within_range_property(self, xs, p):
        v = percentile(xs, p)
        assert min(xs) <= v <= max(xs)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0

    def test_empty(self):
        s = summarize([])
        assert s.count == 0
        assert math.isnan(s.mean)

    def test_single(self):
        s = summarize([5.0])
        assert s.std == 0.0


class TestWindowedPercentile:
    def test_per_minute_quantiles(self):
        times = [0, 10, 30, 70, 80, 130]
        values = [1, 2, 3, 10, 20, 5]
        starts, q = windowed_percentile(times, values, 1.0, window_s=60.0,
                                        start=0.0, end=180.0)
        assert q[0] == 3.0
        assert q[1] == 20.0
        assert q[2] == 5.0

    def test_empty_windows_nan(self):
        starts, q = windowed_percentile([0.0], [1.0], 0.5, window_s=60.0,
                                        start=0.0, end=180.0)
        assert q[0] == 1.0
        assert math.isnan(q[1])

    def test_empty_input(self):
        starts, q = windowed_percentile([], [], 0.5)
        assert starts.size == 0 and q.size == 0


class TestSizeHistogram:
    def test_shares_sum_to_one(self):
        rng = np.random.default_rng(0)
        sizes = rng.integers(1, 10**9, 10_000)
        hist = size_histogram(sizes)
        assert sum(v["count"] for v in hist.values()) == pytest.approx(1.0)
        assert sum(v["capacity"] for v in hist.values()) == pytest.approx(1.0)

    def test_bucket_placement(self):
        hist = size_histogram([5, 5_000, 5_000_000])
        assert hist["1B"]["count"] == pytest.approx(1 / 3)
        assert hist["1KB"]["count"] == pytest.approx(1 / 3)
        assert hist["1MB"]["count"] == pytest.approx(1 / 3)

    def test_empty(self):
        hist = size_histogram([])
        assert all(v["count"] == 0 for v in hist.values())


class TestThroughput:
    def test_bytes_per_minute(self):
        times, bps = throughput_per_minute([0, 30, 70], [100, 200, 400])
        assert bps[0] == 300
        assert bps[1] == 400

    def test_empty(self):
        times, bps = throughput_per_minute([], [])
        assert times.size == 0


class TestTables:
    def test_delta_percent(self):
        assert delta_percent(1.0, 10.0) == pytest.approx(-90.0)
        assert delta_percent(15.0, 10.0) == pytest.approx(50.0)
        assert delta_percent(1.0, 0.0) == float("inf")
        assert delta_percent(0.0, 0.0) == 0.0

    def test_cost_unit_conversion(self):
        cell = DelayCostCell("AReplica", 1.5, 0.00003)
        assert cell.cost_1e4 == pytest.approx(0.3)

    def test_format_table_contains_all_systems(self):
        cells = {
            ("1MB", "eu-west-1", "AReplica"): DelayCostCell("AReplica", 1.5, 3e-5),
            ("1MB", "eu-west-1", "Skyplane"): DelayCostCell("Skyplane", 84.7, 0.054),
        }
        text = format_comparison_table(
            "Table 1", ["eu-west-1"], ["1MB"], cells, ["AReplica", "Skyplane"])
        assert "AReplica" in text and "Skyplane" in text
        assert "84.7" in text
        assert "Δ" in text

    def test_format_table_missing_cells_na(self):
        cells = {
            ("1MB", "eastus", "AReplica"): DelayCostCell("AReplica", 1.3, 9e-5),
        }
        text = format_comparison_table(
            "T", ["eastus"], ["1MB"], cells, ["AReplica", "S3RTC"])
        assert "N/A" in text


class TestReport:
    def test_render_markdown_groups_by_experiment(self):
        results = [
            ExperimentResult("Fig 16", "AReplica 100GB time (s)", 60.0, 60.0, "s"),
            ExperimentResult("Fig 16", "Skyplane 100GB time (s)", 250.0, 280.0, "s"),
            ExperimentResult("Table 1", "1MB delay (s)", 1.4, 1.5, "s"),
        ]
        md = render_markdown(results)
        assert md.index("### Fig 16") < md.index("### Table 1")
        assert "1.00x" in md

    def test_ratio_none_without_paper_value(self):
        r = ExperimentResult("X", "m", 1.0)
        assert r.ratio is None
        assert "—" in render_markdown([r])
