"""Tests for the plain-text chart renderer."""

import math

import pytest

from repro.analysis.textchart import (
    bar_chart,
    grouped_bar_chart,
    histogram,
    series_strip,
)


class TestBarChart:
    def test_basic_rendering(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10, unit="s")
        lines = out.splitlines()
        assert len(lines) == 2
        assert "1s" in lines[0] and "2s" in lines[1]
        # The larger value gets the longer bar.
        assert lines[1].count("█") > lines[0].count("█")

    def test_max_value_fills_width(self):
        out = bar_chart(["x"], [5.0], width=10)
        assert out.count("█") == 10

    def test_zero_values(self):
        out = bar_chart(["x", "y"], [0.0, 0.0], width=10)
        assert "█" not in out

    def test_title(self):
        out = bar_chart(["x"], [1.0], title="My chart")
        assert out.splitlines()[0] == "My chart"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], [], title="t") == "t"

    def test_labels_aligned(self):
        out = bar_chart(["a", "long-label"], [1, 2], width=5)
        pipes = [line.index("|") for line in out.splitlines()]
        assert len(set(pipes)) == 1


class TestGroupedBarChart:
    def test_one_bar_per_series_per_group(self):
        out = grouped_bar_chart(
            ["1MB", "1GB"],
            {"AReplica": [1.0, 4.0], "Skyplane": [76.0, 83.0]},
            width=20,
        )
        lines = out.splitlines()
        assert lines[0] == "1MB:"
        assert sum("AReplica" in l for l in lines) == 2
        assert sum("Skyplane" in l for l in lines) == 2

    def test_shared_scale_across_series(self):
        out = grouped_bar_chart(
            ["g"], {"small": [1.0], "big": [100.0]}, width=20)
        small_line = [l for l in out.splitlines() if "small" in l][0]
        big_line = [l for l in out.splitlines() if "big" in l][0]
        assert big_line.count("█") == 20
        assert small_line.count("█") == 0  # 1/100 of 20 cells rounds down

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a", "b"], {"s": [1.0]})


class TestSeriesStrip:
    def test_renders_one_cell_per_value(self):
        out = series_strip([0, 1, 2, 3])
        inner = out[out.index("[") + 1:out.index("]")]
        assert len(inner) == 4

    def test_peak_is_full_block(self):
        out = series_strip([0.0, 10.0])
        assert "█" in out

    def test_nan_rendered_as_dot(self):
        out = series_strip([1.0, math.nan, 2.0])
        assert "·" in out

    def test_width_bucketing_keeps_peaks(self):
        values = [0.0] * 99 + [100.0]
        out = series_strip(values, width=10)
        assert "█" in out
        inner = out[out.index("[") + 1:out.index("]")]
        assert len(inner) == 10

    def test_max_annotated(self):
        assert "max=7" in series_strip([1.0, 7.0])

    def test_empty(self):
        assert series_strip([], title="t") == "t"


class TestHistogram:
    def test_counts_sum_visible(self):
        out = histogram([1, 1, 2, 9, 9, 9], bins=3, width=10)
        # Three bins, each line ends with its count.
        counts = [int(line.rsplit(" ", 1)[1]) for line in out.splitlines()]
        assert sum(counts) == 6

    def test_log_bins_for_size_distributions(self):
        sizes = [100, 1_000, 10_000, 1_000_000, 10_000_000]
        out = histogram(sizes, bins=5, width=10, log_x=True)
        assert "K" in out or "M" in out

    def test_log_requires_positive(self):
        with pytest.raises(ValueError):
            histogram([0, 1], log_x=True)

    def test_degenerate_single_value(self):
        out = histogram([5.0, 5.0], bins=4)
        counts = [int(line.rsplit(" ", 1)[1]) for line in out.splitlines()]
        assert sum(counts) == 2
