#!/usr/bin/env python3
"""Disaster recovery: fan-out replication across three clouds.

The paper's §1 motivation: region-wide outages happen, sometimes across
multiple regions of one provider, so organizations replicate object
data to *other vendors*.  This example keeps a primary bucket on AWS
replicated to Azure and GCP simultaneously, streams a workload into it,
then simulates a source-region outage and shows that every object
survives — byte-identical — on both other clouds.

Run:  python examples/disaster_recovery.py
"""

import numpy as np

from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob
from repro.traces.ibm_cos import IbmCosTraceGenerator
from repro.traces.replay import TraceReplayer

MB = 1024 * 1024


def main() -> None:
    cloud = build_default_cloud(seed=7)
    # A 60-second SLO (p99) with batching on: the DR posture most
    # deployments want — bounded staleness at minimal cost.
    service = AReplicaService(cloud, ReplicaConfig(slo_seconds=60.0,
                                                   percentile=0.99))

    primary = cloud.bucket("aws:us-east-1", "prod-data")
    replicas = {
        "azure": cloud.bucket("azure:eastus", "prod-data-dr-azure"),
        "gcp": cloud.bucket("gcp:us-east1", "prod-data-dr-gcp"),
    }
    for bucket in replicas.values():
        service.add_rule(primary, bucket)
    print(f"2 DR rules configured (profiling: {cloud.now:.0f} sim-seconds)\n")

    # Stream ten minutes of a realistic object-storage workload.
    trace = IbmCosTraceGenerator(seed=3, mean_rps=2.0).generate(600.0)
    stats = TraceReplayer(cloud, primary).replay_all(trace)
    print(f"workload: {stats.puts} PUTs, {stats.deletes} DELETEs, "
          f"{stats.bytes_written / 1e9:.2f} GB written")

    delays = np.array(service.delays())
    print(f"replication delay: p50={np.quantile(delays, 0.5):.1f}s "
          f"p99={np.quantile(delays, 0.99):.1f}s "
          f"max={delays.max():.1f}s (SLO: 60s)\n")

    # --- the outage ------------------------------------------------------
    print("simulating loss of aws:us-east-1 ...")
    surviving_keys = primary.keys()
    lost_bytes = primary.total_bytes()
    for name, bucket in replicas.items():
        matches = sum(
            1 for key in surviving_keys
            if key in bucket and bucket.head(key).etag == primary.head(key).etag
        )
        print(f"  {name:>5}: {matches}/{len(surviving_keys)} objects intact "
              f"({bucket.total_bytes() / 1e9:.2f} GB)")
        assert matches == len(surviving_keys), f"data loss on {name}!"
    print(f"\nrecovered 100% of {lost_bytes / 1e9:.2f} GB from either vendor; "
          f"total replication cost ${cloud.ledger.total():.4f}")


if __name__ == "__main__":
    main()
