#!/usr/bin/env python3
"""Cost-optimized replication of a hot, derived-object pipeline.

Combines the two §5.4 cost optimizations on a workload shaped like a
log-structured storage engine that uses object storage as its backend
(the paper's RocksDB/Snowflake motivation):

* a hot manifest object is overwritten once per second — **SLO-bounded
  batching** collapses those updates into ~one replication per SLO
  window;
* segment objects are *compacted* by concatenating existing segments —
  **changelog propagation** rebuilds them at the destination from data
  already there, moving (almost) no bytes across clouds.

Run:  python examples/hot_object_pipeline.py
"""

from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.cost import CostCategory
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024


def main() -> None:
    cloud = build_default_cloud(seed=11)
    service = AReplicaService(cloud, ReplicaConfig(slo_seconds=30.0))
    src = cloud.bucket("aws:us-east-1", "engine-data")
    dst = cloud.bucket("gcp:us-east1", "engine-data-replica")
    rule = service.add_rule(src, dst)

    # --- phase 1: write and replicate base segments -----------------------
    segments = {}
    for i in range(4):
        blob = Blob.fresh(64 * MB)
        segments[f"seg/{i:04}"] = blob
        src.put_object(f"seg/{i:04}", blob, cloud.now)
    cloud.run()
    print(f"4 x 64 MB segments replicated "
          f"(egress so far ${cloud.ledger.total(CostCategory.EGRESS):.4f})\n")

    # --- phase 2: hot manifest, 1 update/second for 2 minutes --------------
    def manifest_writer():
        for _ in range(120):
            src.put_object("MANIFEST", Blob.fresh(2 * MB), cloud.now)
            yield cloud.sim.sleep(1.0)

    before = cloud.ledger.snapshot()
    cloud.sim.run_process(manifest_writer())
    cloud.run()
    manifest_records = [r for r in service.records if r.key == "MANIFEST"]
    flushes = rule.batcher.stats["flushes"]
    delta = before.delta(cloud.ledger.snapshot())
    print(f"hot manifest: 120 updates -> {flushes} actual replications "
          f"(SLO-bounded batching)")
    print(f"  every update met its 30 s SLO: "
          f"{all(r.delay <= 30.5 for r in manifest_records)}")
    print(f"  phase egress cost ${delta.totals.get(CostCategory.EGRESS, 0):.4f} "
          f"instead of ~${0.12 * 120 * 2 * MB / 1e9:.4f} unbatched\n")

    # --- phase 3: compaction via changelog propagation ----------------------
    before = cloud.ledger.snapshot()

    def compactor():
        merged = Blob.concat([segments["seg/0000"], segments["seg/0001"]])
        yield from rule.changelog.record_concat(
            [("seg/0000", segments["seg/0000"].etag),
             ("seg/0001", segments["seg/0001"].etag)],
            "seg/merged-0", merged.etag,
        )
        src.put_object("seg/merged-0", merged, cloud.now)

    cloud.sim.run_process(compactor())
    cloud.run()
    delta = before.delta(cloud.ledger.snapshot())
    assert dst.head("seg/merged-0").etag == src.head("seg/merged-0").etag
    print("compaction: 128 MB merged segment replicated via CONCAT changelog")
    print(f"  applied at destination: "
          f"{rule.engine.stats['changelog_applied'] == 1}")
    print(f"  cross-cloud egress for the merge: "
          f"${delta.totals.get(CostCategory.EGRESS, 0):.4f} (vs ~$0.0154 for a full copy)")


if __name__ == "__main__":
    main()
