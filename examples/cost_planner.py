#!/usr/bin/env python3
"""Cost planning: what would replicating your workload cost per month?

Uses the analytic cost model (validated against the simulator's metered
ledger in the test suite) to project 30-day replication bills for a
realistic object-storage workload across AReplica, Skyplane, and the
proprietary services — then cross-checks the AReplica projection by
actually replaying a slice of the workload through the simulator.

Run:  python examples/cost_planner.py
"""

import numpy as np

from repro.analysis.costs import ReplicationCostModel
from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.traces.ibm_cos import IbmCosTraceGenerator
from repro.traces.replay import TraceReplayer

SRC, DST = "aws:us-east-1", "aws:us-east-2"
PUTS_PER_DAY = 50_000


def main() -> None:
    # --- 1. a day of representative workload -----------------------------
    gen = IbmCosTraceGenerator(seed=9, mean_rps=PUTS_PER_DAY / 86_400.0)
    day = gen.generate(86_400.0)
    sizes = [r.size for r in day if r.op == "PUT"]
    print(f"workload: {len(sizes)} PUTs/day, {sum(sizes) / 1e9:.1f} GB/day, "
          f"p50 size {np.median(sizes) / 1024:.0f} KB\n")

    # --- 2. analytic 30-day projection per system --------------------------
    model = ReplicationCostModel()
    print(f"projected 30-day cost, {SRC} -> {DST}:")
    print(f"  {'system':<10} {'egress':>9} {'compute':>10} {'other':>8} "
          f"{'total':>10}")
    projections = {}
    for system in ("areplica", "s3rtc", "skyplane"):
        est = model.workload_monthly(SRC, DST, sizes, system)
        projections[system] = est
        other = est.requests + est.kv + est.service_fee + est.storage
        print(f"  {system:<10} ${est.egress:>8.2f} ${est.compute:>9.2f} "
              f"${other:>7.2f} ${est.total:>9.2f}")
    sky_over_ours = projections["skyplane"].total / projections["areplica"].total
    print(f"\nSkyplane's per-object VM provisioning costs "
          f"{sky_over_ours:,.0f}x AReplica's serverless bill for this "
          "small-object-heavy workload.\n")

    # --- 3. cross-check: replay an hour through the simulator ---------------
    cloud = build_default_cloud(seed=9)
    service = AReplicaService(cloud, ReplicaConfig(slo_seconds=10.0))
    src = cloud.bucket(SRC, "src")
    dst = cloud.bucket(DST, "dst")
    service.add_rule(src, dst)
    before = cloud.ledger.snapshot()
    hour = [r for r in day if r.time < 3600.0]
    TraceReplayer(cloud, src).replay_all(hour)
    metered = before.delta(cloud.ledger.snapshot()).total
    metered_monthly = metered * 24 * 30
    predicted = projections["areplica"].total
    print("cross-check against the metered simulator (1 replayed hour,")
    print(f"  scaled to 30 days): metered ${metered_monthly:.2f} vs "
          f"analytic ${predicted:.2f} "
          f"({metered_monthly / predicted:.2f}x)")
    summary = service.summary()
    print(f"  and the workload met its 10 s SLO: p99 delay "
          f"{summary['delay_p99_s']:.1f}s, p99.99 "
          f"{summary['delay_p9999_s']:.1f}s")


if __name__ == "__main__":
    main()
