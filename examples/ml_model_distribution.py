#!/usr/bin/env python3
"""Global ML-model distribution with bulk serverless replication.

§6 "Emerging Use Cases": organizations push large model artifacts
(tens of GB) from a training region to serving regions across clouds,
and deployment time is gated by replication.  This example publishes a
20 GB model checkpoint and fans it out to three serving regions with
AReplica's highly parallel distributed replication, then compares the
same push done over a Skyplane-style VM relay.

Run:  python examples/ml_model_distribution.py
"""

from repro.baselines.skyplane import SkyplaneReplicator
from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

GB = 1024**3
MODEL_SIZE = 20 * GB
SERVING_REGIONS = ["aws:eu-west-1", "azure:southeastasia", "gcp:us-west1"]


def areplica_push():
    cloud = build_default_cloud(seed=5)
    service = AReplicaService(cloud, ReplicaConfig(slo_seconds=0.0,
                                                   max_parallelism=512))
    hub = cloud.bucket("aws:us-east-1", "model-registry")
    for region in SERVING_REGIONS:
        service.add_rule(hub, cloud.bucket(region, "model-cache"))
    profiling_end = cloud.now
    before = cloud.ledger.snapshot()
    publish_time = cloud.now
    hub.put_object("llm-v7.ckpt", Blob.fresh(MODEL_SIZE), cloud.now)
    cloud.run()
    results = []
    for record in service.records:
        results.append((record.loc_key, record.plan_n, record.delay))
    cost = before.delta(cloud.ledger.snapshot()).total
    slowest = max(r.visible_time for r in service.records) - publish_time
    return results, slowest, cost, profiling_end


def skyplane_push():
    cloud = build_default_cloud(seed=5)
    hub = cloud.bucket("aws:us-east-1", "model-registry")
    hub.put_object("llm-v7.ckpt", Blob.fresh(MODEL_SIZE), cloud.now,
                   notify=False)
    before = cloud.ledger.snapshot()
    slowest = 0.0
    for region in SERVING_REGIONS:
        sky = SkyplaneReplicator(cloud, hub, cloud.bucket(region, "model-cache"),
                                 vm_pairs=8)
        record = sky.replicate_once("llm-v7.ckpt")
        slowest = max(slowest, record.delay)
    cost = before.delta(cloud.ledger.snapshot()).total
    return slowest, cost


def main() -> None:
    print(f"publishing a {MODEL_SIZE / GB:.0f} GB model to "
          f"{len(SERVING_REGIONS)} serving regions\n")

    results, a_slowest, a_cost, _ = areplica_push()
    print("AReplica (serverless, decentralized part scheduling):")
    for loc, n, delay in results:
        print(f"  via {loc:<22} n={n:<4} delay={delay:7.1f} s")
    print(f"  fleet-wide rollout complete in {a_slowest:.1f} s, "
          f"cost ${a_cost:.2f}\n")

    s_slowest, s_cost = skyplane_push()
    print("Skyplane (8 VM pairs per destination):")
    print(f"  fleet-wide rollout complete in {s_slowest:.1f} s, "
          f"cost ${s_cost:.2f}\n")

    speedup = s_slowest / a_slowest
    print(f"AReplica deploys the model {speedup:.1f}x faster "
          f"({'cheaper' if a_cost < s_cost else 'at comparable cost since egress dominates'})")


if __name__ == "__main__":
    main()
