#!/usr/bin/env python3
"""A tour of AReplica's performance model and strategy planner.

Walks through what the planner actually computes (§5.3): the fitted
parameter distributions, the predicted replication-time ladder across
parallelism levels and execution sides, how the chosen plan shifts with
the SLO and the percentile, and where the Monte-Carlo machinery hands
over to the Gumbel (extreme-value) approximation.

Run:  python examples/slo_planner_tour.py
"""

from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud

MB = 1024 * 1024
GB = 1024 * MB
SRC, DST = "aws:us-east-1", "gcp:asia-northeast1"


def main() -> None:
    cloud = build_default_cloud(seed=3)
    service = AReplicaService(cloud, ReplicaConfig(profile_samples=16))
    src = cloud.bucket(SRC, "src")
    dst = cloud.bucket(DST, "dst")
    service.add_rule(src, dst)
    model, planner = service.model, service.planner

    print(f"== fitted parameters ({SRC} -> {DST}) ==")
    for loc in (SRC, DST):
        lp = model.loc_params[loc]
        pp = model.path_params[(loc, SRC, DST)]
        print(f"functions at {loc}:")
        print(f"  I={lp.invoke.mean * 1e3:.0f}±{lp.invoke.std * 1e3:.0f} ms   "
              f"D={lp.startup.mean:.2f}±{lp.startup.std:.2f} s   "
              f"S={pp.client_startup.mean:.2f}±{pp.client_startup.std:.2f} s")
        print(f"  C={pp.chunk.mean:.2f}±{pp.chunk.std:.2f} s/chunk   "
              f"C'={pp.chunk_distributed.mean:.2f}±"
              f"{pp.chunk_distributed.std:.2f} s/chunk")

    size = 1 * GB
    print(f"\n== p99 prediction ladder for a 1 GB object ==")
    print(f"{'n':>5} {'at source':>12} {'at destination':>15}")
    for n in [1, 2, 4, 8, 16, 32, 64, 128]:
        row = [f"{n:>5}"]
        for loc in (SRC, DST):
            t = model.predict_percentile((loc, SRC, DST), size, n, 0.99)
            row.append(f"{t:>11.1f}s")
        print(" ".join(row))
    print(f"(n >= {model.gumbel_threshold}: Gumbel/EVT tail instead of "
          f"Monte-Carlo; {model.mc_runs} MC simulations run so far)")

    print("\n== the plan as a function of the SLO (1 GB) ==")
    print(f"{'SLO':>8} {'plan':>24} {'predicted p99':>14} {'compliant':>10}")
    for slo in [2.0, 5.0, 10.0, 30.0, 120.0, 600.0]:
        plan = planner.generate(size, SRC, DST, slo_remaining=slo)
        where = "source" if plan.loc_key == SRC else "destination"
        print(f"{slo:>7.0f}s {f'n={plan.n} at {where}':>24} "
              f"{plan.predicted_s:>13.1f}s {str(plan.compliant):>10}")

    print("\n== the plan as a function of the percentile (1 GB, 30 s SLO) ==")
    for p in [0.5, 0.9, 0.99, 0.999]:
        plan = planner.generate(size, SRC, DST, slo_remaining=30.0,
                                percentile=p)
        print(f"  p{p * 100:g}: n={plan.n}, predicted {plan.predicted_s:.1f}s")

    print("\nTakeaways: looser SLOs buy cheaper plans (fewer functions); "
          "stricter percentiles demand more parallelism for the same SLO; "
          "and the planner's choice of execution side is data-driven, "
          "not fixed.")


if __name__ == "__main__":
    main()
