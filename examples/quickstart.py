#!/usr/bin/env python3
"""Quickstart: replicate objects from AWS to Azure with AReplica.

Builds a simulated multi-cloud (AWS + Azure + GCP), configures one
replication rule, writes a few objects of different sizes into the
source bucket, and prints the replication delay, the plan AReplica
chose, and the metered cost for each.

Run:  python examples/quickstart.py
"""

from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024


def main() -> None:
    # 1. One simulated multi-cloud, deterministic under a seed.
    cloud = build_default_cloud(seed=42)

    # 2. The AReplica service.  SLO 0 = "always pick the fastest plan".
    service = AReplicaService(cloud, ReplicaConfig(slo_seconds=0.0))

    # 3. Source and destination buckets on different providers.
    src = cloud.bucket("aws:us-east-1", "my-data")
    dst = cloud.bucket("azure:eastus", "my-data-replica")

    # 4. One replication rule.  This runs the offline profiler once to
    #    fit the performance model for both execution locations.
    service.add_rule(src, dst)
    print(f"rule configured, profiling took {cloud.now:.1f} simulated seconds\n")

    # 5. Write objects; notifications drive replication automatically.
    print(f"{'object':<12} {'size':>8} {'delay (s)':>10} {'functions':>10} "
          f"{'executed at':>16} {'cost ($)':>10}")
    for name, size in [("tiny", 64 * 1024), ("small", 1 * MB),
                       ("medium", 128 * MB), ("large", 1024 * MB)]:
        before = cloud.ledger.snapshot()
        src.put_object(name, Blob.fresh(size), cloud.now)
        cloud.run()  # drain the simulation until replication completes
        record = service.records[-1]
        cost = before.delta(cloud.ledger.snapshot()).total
        assert dst.head(name).etag == src.head(name).etag, "content mismatch!"
        print(f"{name:<12} {size // 1024:>6}KB {record.delay:>10.2f} "
              f"{record.plan_n:>10} {record.loc_key:>16} {cost:>10.6f}")

    print("\nAll objects verified byte-identical at the destination (ETag match).")


if __name__ == "__main__":
    main()
